"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main, parse_stream, resolve_core
from repro.errors import ReproError
from repro.fixed import Q15
from repro.options import CompileOptions

GAIN = """
app gain;
param g = 0.5;
input i; output o;
loop { o = mlt(g, i); }
"""

CHAIN = """
app chain;
param g = 0.5;
input i; output o;
loop {
  m := mlt(g, i);
  a := pass(m);
  b := pass(a);
  o = pass_clip(b);
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "gain.dsp"
    path.write_text(GAIN)
    return str(path)


@pytest.fixture
def chain_file(tmp_path):
    path = tmp_path / "chain.dsp"
    path.write_text(CHAIN)
    return str(path)


class TestHelpers:
    def test_resolve_library_cores(self):
        for name in ("audio", "fir", "tiny", "adaptive"):
            assert resolve_core(name).name in (name, "adaptive")

    def test_resolve_core_file(self, tmp_path):
        from repro.arch import dump_core, tiny_core

        path = tmp_path / "core.json"
        path.write_text(dump_core(tiny_core()))
        assert resolve_core(str(path)).name == "tiny"

    def test_resolve_unknown_core(self):
        with pytest.raises(ReproError, match="unknown core"):
            resolve_core("warp-drive")

    def test_parse_stream_floats_and_ints(self):
        port, values = parse_stream("x=0.5,-100,0.25", Q15)
        assert port == "x"
        assert values == [Q15.from_float(0.5), -100, Q15.from_float(0.25)]

    def test_parse_stream_rejects_garbage(self):
        with pytest.raises(ReproError, match="expected port="):
            parse_stream("nonsense", Q15)


class TestCommands:
    def test_compile_summary(self, source_file, capsys):
        assert main(["compile", source_file, "--core", "fir"]) == 0
        out = capsys.readouterr().out
        assert "application  : gain" in out
        assert "schedule" in out

    def test_compile_with_listing_and_charts(self, source_file, capsys):
        assert main([
            "compile", source_file, "--core", "fir",
            "--listing", "--occupation", "--gantt",
        ]) == 0
        out = capsys.readouterr().out
        assert "mult.mult" in out
        assert "%" in out
        assert "schedule:" in out

    def test_compile_writes_image(self, source_file, tmp_path, capsys):
        image = tmp_path / "prog.json"
        assert main([
            "compile", source_file, "--core", "fir", "--out", str(image),
        ]) == 0
        payload = json.loads(image.read_text())
        assert payload["image_format_version"] == 1

    def test_run_prints_streams(self, source_file, capsys):
        assert main([
            "run", source_file, "--core", "fir",
            "--input", "i=0.5,-0.5", "--floats",
        ]) == 0
        out = capsys.readouterr().out
        assert f"o: [{Q15.from_float(0.25)}, {Q15.from_float(-0.25)}]" in out
        assert "(float)" in out

    def test_run_image_roundtrip(self, source_file, tmp_path, capsys):
        image = tmp_path / "prog.json"
        main(["compile", source_file, "--core", "fir", "--out", str(image)])
        capsys.readouterr()
        assert main([
            "run-image", str(image), "--input", "i=16384",
        ]) == 0
        out = capsys.readouterr().out
        assert "o: [8192]" in out

    def test_inspect_core(self, capsys):
        assert main(["inspect-core", "--core", "audio"]) == 0
        out = capsys.readouterr().out
        assert "RT Class identification" in out
        assert "instruction set" in out
        assert "{A, D, G, L, M, X, Y}" in out

    def test_compile_defaults_to_o1(self, source_file, capsys):
        assert main(["compile", source_file, "--core", "fir"]) == 0
        assert "optimizer    : -O1" in capsys.readouterr().out

    def test_compile_opt_disabled(self, chain_file, capsys):
        assert main([
            "compile", chain_file, "--core", "fir", "-O0",
        ]) == 0
        out = capsys.readouterr().out
        assert "optimizer    : -O0 (disabled)" in out
        assert "alu: 3" in out          # the pass chain survives

    def test_compile_opt_level_two_reports_rewrites(self, chain_file, capsys):
        assert main([
            "compile", chain_file, "--core", "fir", "--opt", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "optimizer    : -O2" in out
        assert "algebraic 3" in out     # three collapsed passes
        assert "dce 3" in out

    def test_compile_stop_after_prints_stage_fingerprints(
            self, source_file, capsys):
        assert main([
            "compile", source_file, "--core", "fir",
            "--stop-after", "schedule",
        ]) == 0
        out = capsys.readouterr().out
        assert "partial compilation" in out
        assert "schedule length:" in out
        for stage in ("parse", "optimize", "rtgen", "schedule"):
            assert stage in out
        assert "regalloc" not in out


class TestExploreCommand:
    def test_explore_table(self, source_file, chain_file, capsys):
        assert main([
            "explore", source_file, chain_file,
            "--mults", "1-2", "--alus", "1", "--rams", "1",
            "--budget", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "mult" in out and "pareto" in out
        assert "gain" in out and "chain" in out
        assert "2 candidates" in out

    def test_explore_json(self, source_file, capsys):
        assert main([
            "explore", source_file, "--mults", "1", "--alus", "1",
            "--rams", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["applications"] == ["gain"]
        point = payload["points"][0]
        assert point["feasible"] is True
        assert point["schedule_lengths"]["gain"] >= 1
        assert point["pareto"] is True

    def test_explore_json_carries_the_full_allocation(self, source_file,
                                                      capsys):
        """Two sweeps differing only in ram/rom sizing or merge variant
        must be distinguishable from the JSON output alone."""
        assert main([
            "explore", source_file, "--mults", "1", "--alus", "1",
            "--rams", "1", "--rf-sizes", "8", "--ram-sizes", "64",
            "--rom-sizes", "32", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        point = payload["points"][0]
        assert point["allocation"] == {
            "n_mult": 1, "n_alu": 1, "n_ram": 1,
            "rf_size": 8, "ram_size": 64, "rom_size": 32,
            "merge_variant": "none",
        }
        assert point["n_rfs"] >= 1
        assert point["storage_words"] >= 1
        assert payload["sweep"] == {
            "grid": 1, "evaluated": 1, "refined": False,
            "coarse": None, "fine": None,
        }

    def test_explore_refine_prunes_and_reports(self, source_file, capsys):
        assert main([
            "explore", source_file, "--mults", "1", "--alus", "1-3",
            "--rams", "1", "--rf-sizes", "8,12,16", "--refine",
        ]) == 0
        out = capsys.readouterr().out
        assert "coarse-to-fine: evaluated" in out
        assert "of 9 grid points" in out

    def test_explore_refine_json_bookkeeping(self, source_file, capsys):
        assert main([
            "explore", source_file, "--mults", "1", "--alus", "1-3",
            "--rams", "1", "--rf-sizes", "8,12,16", "--refine", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        sweep = payload["sweep"]
        assert sweep["refined"] is True
        assert sweep["grid"] == 9
        assert sweep["coarse"] + sweep["fine"] == sweep["evaluated"]
        assert sweep["evaluated"] <= sweep["grid"]
        assert payload["pareto_axes"] == [
            "worst_length", "n_opus", "n_rfs", "storage_words",
        ]

    def test_explore_refine_persists_to_disk_cache(self, source_file,
                                                   tmp_path, capsys):
        """--refine must write through to --cache-dir (regression: an
        *empty* ExploreCache is falsy, so `cache or ExploreCache()`
        silently dropped the disk tier)."""
        from repro.arch import ExploreCache
        from repro.pipeline import DiskCache

        cache = str(tmp_path / "cache")
        args = ["explore", source_file, "--mults", "1", "--alus", "1-3",
                "--rams", "1", "--rf-sizes", "8,12,16", "--refine",
                "--cache-dir", cache]
        assert main(args) == 0
        capsys.readouterr()
        assert len(DiskCache(cache)) > 0, \
            "refined sweep wrote nothing to the store"
        # A "new process" (fresh memory tier, same directory) re-running
        # the same refined sweep restores every candidate from disk.
        from repro.arch import SweepSpec, explore_refined
        from repro.lang import parse_source

        dfgs = [parse_source(Path(source_file).read_text())]
        spec = SweepSpec(n_mults=(1,), n_alus=(1, 2, 3), n_rams=(1,),
                         rf_sizes=(8, 12, 16))
        warm = ExploreCache(disk=DiskCache(cache))
        refined = explore_refined(dfgs, spec, cache=warm)
        assert warm.misses == 0
        assert warm.disk_hits == refined.n_evaluated

    def test_explore_merge_variant_sweep(self, chain_file, capsys):
        assert main([
            "explore", chain_file, "--mults", "1", "--alus", "1",
            "--rams", "1", "--merges", "none,alu-operands",
        ]) == 0
        out = capsys.readouterr().out
        assert "alu-operands" in out
        assert "2 candidates" in out

    def test_explore_bad_merge_variant_rejected(self, source_file, capsys):
        assert main([
            "explore", source_file, "--merges", "none,zap",
        ]) == 1
        assert "unknown variant 'zap'" in capsys.readouterr().err

    def test_explore_infeasible_budget_reported(self, chain_file, capsys):
        assert main([
            "explore", chain_file, "--mults", "1", "--alus", "1",
            "--rams", "1", "--budget", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "infeasible" in out
        assert "BudgetExceededError" in out

    def test_explore_sweep_ranges(self, source_file, capsys):
        assert main([
            "explore", source_file, "--mults", "1,3", "--alus", "1-2",
            "--rams", "1",
        ]) == 0
        assert "4 candidates" in capsys.readouterr().out

    def test_explore_bad_sweep_rejected(self, source_file, capsys):
        assert main([
            "explore", source_file, "--mults", "zero",
        ]) == 1
        assert "bad --mults" in capsys.readouterr().err

    def test_explore_reversed_range_rejected(self, source_file, capsys):
        """`1,3-2` used to silently collapse to [1]; it must error."""
        assert main([
            "explore", source_file, "--mults", "1,3-2",
        ]) == 1
        err = capsys.readouterr().err
        assert "reversed range" in err
        assert "3 > 2" in err

    def test_explore_zero_size_sweep_rejected(self, source_file, capsys):
        assert main([
            "explore", source_file, "--rf-sizes", "0,8",
        ]) == 1
        assert "must be >= 1" in capsys.readouterr().err

    def test_run_output_invariant_across_levels(self, chain_file, capsys):
        streams = []
        for level in ("0", "2"):
            assert main([
                "run", chain_file, "--core", "fir",
                "-O", level, "--input", "i=0.5,-0.25,0.125",
            ]) == 0
            streams.append(capsys.readouterr().out)
        assert streams[0] == streams[1]
        assert f"o: [{Q15.from_float(0.25)}" in streams[0]

    def test_compile_reports_cache_line(self, source_file, capsys):
        assert main(["compile", source_file, "--core", "fir"]) == 0
        assert "stage cache  : 0/8 stages cached" in capsys.readouterr().out
        assert main(["compile", source_file, "--core", "fir"]) == 0
        assert "stage cache  : 8/8 stages cached" in capsys.readouterr().out

    def test_compile_no_disk_cache_is_cold(self, source_file, capsys):
        for _ in range(2):
            assert main([
                "compile", source_file, "--core", "fir", "--no-disk-cache",
            ]) == 0
            out = capsys.readouterr().out
            assert "stage cache" not in out
            assert "schedule" in out

    def test_stop_after_marks_cache_sources(self, source_file, tmp_path,
                                            capsys):
        cache = str(tmp_path / "cache")
        args = ["compile", source_file, "--core", "fir",
                "--stop-after", "schedule", "--cache-dir", cache]
        assert main(args) == 0
        assert "[disk]" not in capsys.readouterr().out
        assert main(args) == 0
        assert "[disk]" in capsys.readouterr().out

    def test_broken_pipe_is_a_clean_exit(self, source_file, capsys,
                                         monkeypatch):
        """`python -m repro explore ... | head` must not report
        `error: Broken pipe` with exit 1 when the consumer goes away."""
        from repro import cli

        def exploding(args):
            raise BrokenPipeError(32, "Broken pipe")

        monkeypatch.setattr(cli, "cmd_compile", exploding)
        assert cli.main(["compile", source_file, "--core", "fir"]) == 0
        assert "error" not in capsys.readouterr().err

    def test_real_os_errors_still_report(self, source_file, capsys,
                                         monkeypatch):
        from repro import cli

        def exploding(args):
            raise PermissionError(13, "Permission denied")

        monkeypatch.setattr(cli, "cmd_compile", exploding)
        assert cli.main(["compile", source_file, "--core", "fir"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_budget_failure_is_reported(self, source_file, capsys):
        code = main([
            "compile", source_file, "--core", "fir", "--budget", "1",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_is_reported(self, capsys):
        assert main(["compile", "/no/such/file.dsp", "--core", "fir"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBatchCommand:
    def test_batch_table(self, source_file, chain_file, capsys):
        assert main([
            "batch", source_file, chain_file, "--core", "fir",
        ]) == 0
        out = capsys.readouterr().out
        assert "application" in out and "cycles" in out
        assert "gain.dsp" in out and "chain.dsp" in out
        assert "2/2 applications compiled" in out

    def test_batch_duplicate_sources_share_stages(self, source_file, capsys):
        assert main([
            "batch", source_file, source_file, "--core", "fir",
            "--no-disk-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "8 memory hits" in out

    def test_batch_json(self, source_file, chain_file, capsys):
        assert main([
            "batch", source_file, chain_file, "--core", "fir", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["core"] == "fir"
        assert [a["ok"] for a in payload["applications"]] == [True, True]
        assert payload["applications"][0]["application"] == "gain"
        assert payload["applications"][0]["n_cycles"] >= 1
        assert payload["cache"]["executed"] == 16

    def test_batch_writes_images(self, source_file, tmp_path, capsys):
        out_dir = tmp_path / "images"
        assert main([
            "batch", source_file, "--core", "fir", "--out-dir", str(out_dir),
        ]) == 0
        payload = json.loads((out_dir / "gain.json").read_text())
        assert payload["image_format_version"] == 1

    def test_batch_colliding_stems_never_clobber(self, tmp_path, capsys):
        a = tmp_path / "a" / "filter.dsp"
        b = tmp_path / "b" / "filter.dsp"
        for path, gain in ((a, "0.5"), (b, "0.25")):
            path.parent.mkdir()
            path.write_text(GAIN.replace("0.5", gain))
        out_dir = tmp_path / "images"
        assert main([
            "batch", str(a), str(b), "--core", "fir",
            "--out-dir", str(out_dir),
        ]) == 0
        first = json.loads((out_dir / "filter.json").read_text())
        second = json.loads((out_dir / "filter-2.json").read_text())
        # Different gains -> different immediates -> different words;
        # the point is that neither image clobbered the other.
        assert first["words"] != second["words"]

    def test_unreadable_source_is_reported(self, tmp_path, capsys):
        # A directory where a source file is expected: OSError, not a
        # traceback (the docs/cli.md exit-code contract).
        assert main(["compile", str(tmp_path), "--core", "fir"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_batch_failure_exit_code(self, source_file, chain_file, capsys):
        assert main([
            "batch", source_file, chain_file, "--core", "fir",
            "--budget", "1",
        ]) == 1
        out = capsys.readouterr().out
        assert "BudgetExceededError" in out
        assert "0/2 applications compiled" in out

    def test_batch_warm_second_run_hits_disk(self, source_file, chain_file,
                                             tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["batch", source_file, chain_file, "--core", "fir",
                "--cache-dir", cache]
        assert main(args) == 0
        assert "16 disk hits" not in capsys.readouterr().out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out
        assert "16 disk hits" in out


class TestCrossProcessCache:
    """The acceptance scenario end to end: two real processes, one
    cache directory, bit-identical images."""

    def run_cli(self, *argv, cache_dir):
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src")
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env, cwd=root, timeout=120,
        )

    def test_pipe_to_head_exits_cleanly(self, source_file, tmp_path):
        """The real thing: `repro explore ... | head -n 0` — the
        consumer is gone before the table prints."""
        root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        script = (f"{sys.executable} -u -m repro explore {source_file} "
                  f"--mults 1 --alus 1 --rams 1 | head -n 0; "
                  "exit ${PIPESTATUS[0]}")
        proc = subprocess.run(["bash", "-c", script], capture_output=True,
                              text=True, env=env, cwd=root, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "Broken pipe" not in proc.stderr

    def test_second_process_restores_from_disk(self, source_file, tmp_path):
        cache_dir = tmp_path / "cache"
        first_image = tmp_path / "first.json"
        second_image = tmp_path / "second.json"

        first = self.run_cli("compile", source_file, "--core", "fir",
                             "--out", str(first_image), cache_dir=cache_dir)
        assert first.returncode == 0, first.stderr
        assert "stage cache  : 0/8 stages cached" in first.stdout

        second = self.run_cli("compile", source_file, "--core", "fir",
                              "--out", str(second_image), cache_dir=cache_dir)
        assert second.returncode == 0, second.stderr
        assert "stage cache  : 8/8 stages cached (8 disk)" in second.stdout
        assert first_image.read_bytes() == second_image.read_bytes()


class TestOptionValidation:
    """--budget/--repeat range checks are *usage* errors: exit code 2
    with a clear message, before any compilation starts."""

    @pytest.mark.parametrize("argv", [
        ["compile", "x.dsp", "--budget", "0"],
        ["compile", "x.dsp", "--budget", "-5"],
        ["compile", "x.dsp", "--repeat", "0"],
        ["compile", "x.dsp", "--repeat", "-1"],
        ["run", "x.dsp", "--budget", "0"],
        ["batch", "x.dsp", "--budget", "0"],
        ["explore", "x.dsp", "--budget", "0"],
    ])
    def test_out_of_range_values_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as info:
            main(argv)
        assert info.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_non_integer_budget_exits_2(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["compile", "x.dsp", "--budget", "lots"])
        assert info.value.code == 2
        assert "expected an integer" in capsys.readouterr().err


class TestOptionsEcho:
    """batch/explore --json emit the one CompileOptions.to_dict schema."""

    def test_batch_json_options_schema(self, source_file, capsys):
        assert main([
            "batch", source_file, "--core", "fir", "--budget", "32",
            "-O", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        expected = CompileOptions(budget=32, opt=2).to_dict()
        assert payload["options"] == expected

    def test_explore_json_options_schema(self, source_file, capsys):
        assert main([
            "explore", source_file, "--mults", "1", "--alus", "1",
            "--rams", "1", "--budget", "32", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["options"] == CompileOptions(budget=32).to_dict()

    def test_batch_and_explore_share_one_schema(self, source_file, capsys):
        assert main(["batch", source_file, "--core", "fir", "--json"]) == 0
        batch = json.loads(capsys.readouterr().out)
        assert main([
            "explore", source_file, "--mults", "1", "--alus", "1",
            "--rams", "1", "--json",
        ]) == 0
        explore = json.loads(capsys.readouterr().out)
        assert sorted(batch["options"]) == sorted(explore["options"]) \
            == sorted(CompileOptions().to_dict())


class TestSingleFlagDeclaration:
    """Every compile-related flag comes from the CompileOptions bridge —
    no subcommand may re-declare budget/opt/cover/mode/repeat/stop-after
    or the cache flags with its own add_argument."""

    BRIDGED = ("--budget", "--opt", "--cover", "--mode", "--repeat",
               "--stop-after", "--cache-dir", "--no-disk-cache")

    def test_no_duplicate_declarations_in_cli_source(self):
        from repro import cli

        source = Path(cli.__file__).read_text()
        for flag in self.BRIDGED:
            assert f'add_argument("{flag}"' not in source, flag
            assert f"add_argument('{flag}')" not in source, flag

    def test_subcommands_agree_on_defaults(self):
        from repro.cli import build_parser

        parser = build_parser()
        actions = parser._subparsers._group_actions[0].choices
        defaults = CompileOptions()
        for command in ("compile", "batch", "explore", "run"):
            sub = actions[command]
            assert sub.get_default("opt") == defaults.opt, command
            assert sub.get_default("budget") == defaults.budget, command


class TestEngineFlagAvailability:
    """--engine numpy without numpy is a *usage* error (exit 2, with the
    remedy named); --engine auto must silently fall back instead."""

    def test_numpy_absent_is_a_usage_error(self, source_file, capsys,
                                           monkeypatch):
        from repro.sim import batch as batch_module

        monkeypatch.setattr(batch_module, "NUMPY_AVAILABLE", False)
        with pytest.raises(SystemExit) as info:
            main(["run", source_file, "--core", "fir",
                  "--input", "i=1,2,3", "--engine", "numpy"])
        assert info.value.code == 2
        err = capsys.readouterr().err
        assert "numpy" in err
        assert "pip install repro[batch]" in err
        assert "--engine auto" in err
        assert "Traceback" not in err

    def test_run_image_shares_the_guard(self, source_file, tmp_path,
                                        capsys, monkeypatch):
        from repro.sim import batch as batch_module

        image = tmp_path / "gain.json"
        assert main(["compile", source_file, "--core", "fir",
                     "--out", str(image)]) == 0
        capsys.readouterr()
        monkeypatch.setattr(batch_module, "NUMPY_AVAILABLE", False)
        with pytest.raises(SystemExit) as info:
            main(["run-image", str(image), "--input", "i=1,2",
                  "--engine", "numpy"])
        assert info.value.code == 2

    def test_auto_falls_back_silently(self, source_file, capsys,
                                      monkeypatch):
        from repro.sim import batch as batch_module

        monkeypatch.setattr(batch_module, "NUMPY_AVAILABLE", False)
        assert main(["run", source_file, "--core", "fir",
                     "--input", "i=1,2,3", "--engine", "auto"]) == 0
        captured = capsys.readouterr()
        assert "o: [" in captured.out
        assert "numpy" not in captured.err

    def test_numpy_present_is_accepted(self, source_file, capsys):
        from repro.sim import NUMPY_AVAILABLE

        if not NUMPY_AVAILABLE:
            pytest.skip("numpy not installed")
        assert main(["run", source_file, "--core", "fir",
                     "--input", "i=1,2,3", "--engine", "numpy"]) == 0


class TestFuzzCommand:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--core", "fir", "--count", "5",
                     "--max-ops", "8"]) == 0
        out = capsys.readouterr().out
        assert "5 cases" in out
        assert "0 failures" in out

    def test_injected_failure_reports_and_exits_one(self, tmp_path, capsys):
        report_path = tmp_path / "fuzz_report.json"
        code = main(["fuzz", "--core", "fir", "--count", "6",
                     "--max-ops", "8", "--inject", "mult",
                     "--report", str(report_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILURE seed=" in out
        assert "replay: repro fuzz --core fir --seed" in out
        assert "shrunk" in out
        payload = json.loads(report_path.read_text())
        assert payload["n_failures"] >= 1
        failure = payload["failures"][0]
        assert "mult" in failure["shrunk_source"]
        assert failure["shrunk_nodes"] <= failure["n_nodes"]

    def test_json_output(self, capsys):
        assert main(["fuzz", "--count", "4", "--max-ops", "8",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_cases"] == 4
        assert payload["failures"] == []

    def test_time_budget(self, capsys):
        assert main(["fuzz", "--time", "0.01", "--max-ops", "8"]) == 0
        assert "cases in" in capsys.readouterr().out

    def test_bad_levels_rejected(self, capsys):
        assert main(["fuzz", "--count", "1", "--levels", "0,9"]) == 1
        assert "optimizer levels" in capsys.readouterr().err

    def test_bad_engines_rejected(self, capsys):
        assert main(["fuzz", "--count", "1", "--engines", "auto"]) == 1
        assert "not a" in capsys.readouterr().err


class TestCorpusCommand:
    def test_report_written_and_clean(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_corpus.json"
        assert main(["corpus", "--count", "5", "--core", "fir",
                     "--frames", "4", "--lanes", "2",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "mismatches: 0" in out
        payload = json.loads(out_path.read_text())
        assert payload["count"] == 5
        assert payload["mismatches"] == 0
        assert set(payload["compile"]) == {"O0", "O1", "O2"}

    def test_json_output(self, capsys):
        assert main(["corpus", "--count", "4", "--frames", "4",
                     "--lanes", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 4
        assert payload["failures"] == []


class TestCheckCommand:
    def test_clean_source_exits_zero(self, source_file, capsys):
        assert main(["check", source_file, "--core", "fir"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "0 errors" in out

    def test_clean_image_exits_zero(self, source_file, tmp_path, capsys):
        image = tmp_path / "prog.json"
        main(["compile", source_file, "--core", "fir", "--out", str(image)])
        capsys.readouterr()
        assert main(["check", "--image", str(image)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupted_image_exits_one(self, source_file, tmp_path, capsys):
        import dataclasses

        from repro.encode import dump_program, load_program

        image = tmp_path / "prog.json"
        main(["compile", source_file, "--core", "fir", "--out", str(image)])
        capsys.readouterr()
        binary = load_program(image.read_text())
        fmt = binary.format
        victim = next(rf for rf in binary.core.datapath.register_files.values()
                      if rf.writers)
        fields = fmt.decode(binary.words[0])
        fields[f"{victim.name}.wr_en"] = 1
        words = list(binary.words)
        words[0] = fmt.encode(fields)
        bad = tmp_path / "bad.json"
        bad.write_text(dump_program(dataclasses.replace(binary, words=words)))
        assert main(["check", "--image", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "mc.bus-hazard" in out
        assert "1 error" in out

    def test_json_output_shape(self, source_file, capsys):
        assert main(["check", source_file, "--core", "fir", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert payload["findings"] == []

    def test_source_and_image_are_exclusive(self, source_file, capsys):
        assert main(["check", source_file, "--image", "x.json"]) == 1
        assert "not both" in capsys.readouterr().err

    def test_requires_a_subject(self, capsys):
        assert main(["check"]) == 1
        assert "nothing to check" in capsys.readouterr().err


class TestVerifyFlag:
    def test_compile_accepts_verify_strict(self, source_file, capsys):
        assert main(["compile", source_file, "--core", "fir",
                     "--verify", "strict", "--no-disk-cache"]) == 0
        assert "application  : gain" in capsys.readouterr().out

    def test_fuzz_no_lint_flag_accepted(self, capsys):
        assert main(["fuzz", "--core", "fir", "--count", "3",
                     "--max-ops", "8", "--no-lint"]) == 0
        assert "0 failures" in capsys.readouterr().out
