"""Tests for dependence analysis and the list scheduler."""

import pytest

from repro.arch import audio_core
from repro.core import ClassTable, InstructionSet, impose_instruction_set
from repro.errors import BudgetExceededError
from repro.lang import parse_source
from repro.rtgen import generate_rts
from repro.sched import (
    EdgeKind,
    allocate_registers,
    build_dependence_graph,
    compute_priorities,
    list_schedule,
    vertical_schedule,
)

TREBLE = """
app treble;
param d1 = 0.40, d2 = -0.20, e1 = 0.30;
input IN; output out;
state u(2), v(2);
loop {
  u  = IN;
  x0 := u@2;
  m  := mlt(d2, x0);
  a  := pass(m);
  x2 := v@1;
  m  := mlt(e1, x2);
  a  := add(m, a);
  x1 := u@1;
  m  := mlt(d1, x1);
  rd := add_clip(m, a);
  v  = rd;
  out = rd;
}
"""


def treble_setup(impose=True):
    core = audio_core()
    program = generate_rts(parse_source(TREBLE), core)
    if impose:
        table = ClassTable.from_core(core)
        iset = InstructionSet.from_desired(table.names, core.instruction_types)
        model = impose_instruction_set(program.rts, table, iset)
        program.rts = model.rts
    graph = build_dependence_graph(program)
    return core, program, graph


class TestDependence:
    def test_raw_edges_connect_producers_to_readers(self):
        _, program, graph = treble_setup(impose=False)
        for edge in graph.edges:
            if edge.kind is EdgeKind.RAW:
                produced = {d.value for d in edge.src.destinations}
                assert produced & set(edge.dst.read_values)

    def test_war_edges_point_at_fp_advance(self):
        _, program, graph = treble_setup(impose=False)
        carry = program.loop_carries[0]
        producers = program.producers()
        writer = producers[carry.new]
        war = [e for e in graph.edges if e.kind is EdgeKind.WAR]
        assert war, "frame pointer must generate WAR edges"
        assert all(e.dst is writer for e in war)
        assert all(e.delay == 0 for e in war)

    def test_carry_edges_have_distance_one(self):
        _, program, graph = treble_setup(impose=False)
        carries = [e for e in graph.edges if e.kind is EdgeKind.CARRY]
        assert carries
        assert all(e.distance == 1 for e in carries)

    def test_priorities_decrease_along_edges(self):
        _, _, graph = treble_setup(impose=False)
        priority = compute_priorities(graph)
        for edge in graph.edges:
            if edge.distance == 0:
                assert priority[edge.src] >= priority[edge.dst] + edge.delay


class TestListScheduler:
    def test_treble_schedules_and_validates(self):
        _, _, graph = treble_setup()
        schedule = list_schedule(graph, budget=64)
        schedule.validate(graph)
        assert schedule.length <= 64

    def test_schedule_without_budget(self):
        _, _, graph = treble_setup()
        schedule = list_schedule(graph)
        schedule.validate(graph)

    def test_budget_too_tight_raises(self):
        _, _, graph = treble_setup()
        with pytest.raises(BudgetExceededError) as info:
            list_schedule(graph, budget=3)
        assert info.value.achieved > 3
        assert info.value.budget == 3

    def test_io_exclusivity_is_respected(self):
        # The ABC artificial resource keeps IPB/OPB transfers in
        # different cycles even though they share no physical resource.
        _, program, graph = treble_setup()
        schedule = list_schedule(graph, budget=64)
        io_cycles = [
            cycle for rt, cycle in schedule.cycle_of.items()
            if rt.opu in ("ipb", "opb_1", "opb_2")
        ]
        assert len(io_cycles) == len(set(io_cycles)) == 2

    def test_without_imposition_io_may_share_a_cycle(self):
        # Sanity check of the mechanism: removing the artificial
        # resource admits (physically parallel) IO combinations.
        source = """
        app io2;
        input i;
        output o0, o1;
        loop {
          a := pass_clip(i);
          b := pass(a);
          o0 = a;
          o1 = b;
        }
        """
        core = audio_core()
        program = generate_rts(parse_source(source), core)
        graph = build_dependence_graph(program)
        schedule = list_schedule(graph)
        cycles = {
            rt.opu: cycle for rt, cycle in schedule.cycle_of.items()
            if rt.opu.startswith("opb")
        }
        assert cycles["opb_1"] == cycles["opb_2"]

    def test_compaction_moves_producers_towards_consumers(self):
        _, program, graph = treble_setup()
        eager = list_schedule(graph, budget=64, lifetime_compaction=False)
        compact = list_schedule(graph, budget=64, lifetime_compaction=True)
        assert compact.length == eager.length
        compact.validate(graph)

        def total_lifetime(schedule):
            from repro.sched import compute_intervals
            intervals = compute_intervals(program, schedule)
            return sum(
                i.death - i.birth
                for per_rf in intervals.values() for i in per_rf
            )

        assert total_lifetime(compact) <= total_lifetime(eager)

    def test_restarts_never_worse(self):
        _, _, graph = treble_setup()
        base = list_schedule(graph)
        retried = list_schedule(graph, restarts=3, seed=7)
        assert retried.length <= base.length

    def test_register_allocation_fits_audio_core(self):
        _, program, graph = treble_setup()
        schedule = list_schedule(graph, budget=64)
        allocation = allocate_registers(program, schedule)
        datapath = program.core.datapath
        for rf_name, needed in allocation.pressure.items():
            assert needed <= datapath.register_file(rf_name).size

    def test_allocation_keeps_simultaneous_values_apart(self):
        _, program, graph = treble_setup()
        schedule = list_schedule(graph, budget=64)
        allocation = allocate_registers(program, schedule)
        for rf_name, intervals in allocation.intervals.items():
            for i, a in enumerate(intervals):
                for b in intervals[i + 1:]:
                    if allocation.lookup(rf_name, a.value) != allocation.lookup(
                        rf_name, b.value
                    ):
                        continue
                    # Same register: lifetimes must not overlap (a point
                    # shared between death and birth is fine).
                    assert a.death <= b.birth or b.death <= a.birth

    def test_frame_pointer_pinned(self):
        _, program, graph = treble_setup()
        schedule = list_schedule(graph, budget=64)
        allocation = allocate_registers(program, schedule)
        carry = program.loop_carries[0]
        assert allocation.lookup(carry.register_file, carry.old) == carry.register
        assert allocation.lookup(carry.register_file, carry.new) == carry.register


class TestVerticalBaseline:
    def test_vertical_is_one_rt_per_cycle(self):
        _, _, graph = treble_setup()
        schedule = vertical_schedule(graph)
        schedule.validate(graph)
        per_cycle = {}
        for rt, cycle in schedule.cycle_of.items():
            per_cycle.setdefault(cycle, []).append(rt)
        assert all(len(v) == 1 for v in per_cycle.values())

    def test_vertical_much_longer_than_vliw(self):
        _, _, graph = treble_setup()
        vliw = list_schedule(graph)
        vertical = vertical_schedule(graph)
        assert vertical.length >= len(graph.rts)
        assert vertical.length > 2 * vliw.length
