"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert result.stdout.strip(), "examples must print their findings"


def test_quickstart_shows_telemetry():
    """The quickstart demonstrates the observability surface: a span
    timeline from ``Toolchain(..., telemetry=...)`` and per-candidate
    explore progress lines from the callback."""
    script = next(p for p in EXAMPLES if p.stem == "quickstart")
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "stage:schedule" in result.stdout      # timeline span rows
    assert "counters" in result.stdout            # timeline counter block
    assert "candidate 1/2" in result.stdout       # explore progress callback
    assert "candidate 2/2" in result.stdout


def test_example_inventory():
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "audio_tone_control", "isa_conflicts",
            "fir_filter", "retarget_lms",
            "design_space_exploration"} <= names
