"""Tests for the staged pipeline: toolchains, caching, partial compiles.

Satellite coverage of the stage cache: hit on identical re-compile,
invalidation when the source / core / opt level changes, bit-identical
binaries between cached and cold compiles, and the
:class:`CompileOptions` round-trip / fingerprint-stability properties
the cache keys rest on.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    Q15,
    CompileOptions,
    Toolchain,
    audio_core,
    run_reference,
    tiny_core,
)
from repro.errors import OptionsError
from repro.lang import parse_source
from repro.options import SEMANTIC_FIELDS
from repro.pipeline import (
    PIPELINE_STAGES,
    STAGE_NAMES,
    CompileRequest,
    CompileState,
    StageCache,
    core_fingerprint,
    dfg_fingerprint,
)

SOURCE = """
app opts;
param k = 0.5;
input i; output o;
state s(1);
loop {
  s = i;
  m := mlt(k, s@1);
  o = add_clip(m, i);
}
"""

VARIANT = SOURCE.replace("0.5", "0.25")

N_STAGES = len(PIPELINE_STAGES)


def stimulus():
    return {"i": [Q15.from_float(v) for v in (0.5, -0.25, 0.125, 0.0, 0.9)]}


def toolchain(core=None, **options):
    """A memory-cached toolchain (the sessions' classic behavior)."""
    return Toolchain(core if core is not None else audio_core(),
                     cache=StageCache(), **options)


class TestToolchainBasics:
    def test_cached_and_cold_toolchains_binaries_identical(self):
        cold = Toolchain(audio_core(), cache=None, budget=64).compile(SOURCE)
        warm = toolchain(budget=64).compile(SOURCE)
        assert cold.binary.words == warm.binary.words

    def test_stage_chain_names(self):
        assert STAGE_NAMES == ("parse", "optimize", "rtgen", "merge",
                               "impose", "schedule", "regalloc", "assemble")

    def test_unknown_stop_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            toolchain(stop_after="codegen")

    def test_partial_compile_stops_after_stage(self):
        state = toolchain(budget=64, stop_after="schedule") \
            .run_pipeline(SOURCE)
        assert state.completed == list(STAGE_NAMES[:6])
        assert not state.is_complete
        assert state.schedule.length <= 64
        assert "binary" not in state.artifacts
        with pytest.raises(ValueError, match="stopped after"):
            state.as_compiled()

    def test_partial_then_full_resumes_from_cached_prefix(self):
        partial = toolchain(budget=64, stop_after="schedule")
        partial.run_pipeline(SOURCE)
        state = partial.replace(stop_after=None).run_pipeline(SOURCE)
        assert all(state.cache_hits[name] for name in STAGE_NAMES[:6])
        assert not state.cache_hits["regalloc"]
        compiled = state.as_compiled()
        assert compiled.run(stimulus()) == \
            run_reference(compiled.dfg, stimulus())

    def test_compile_always_runs_the_full_chain(self):
        # compile() ignores a configured stop_after: it promises a
        # CompiledProgram (run_pipeline is the partial-compile verb).
        compiled = toolchain(budget=64, stop_after="schedule") \
            .compile(SOURCE)
        assert compiled.binary.words

    def test_core_resolution_by_name(self):
        by_name = Toolchain("audio", cache=None, budget=64).compile(SOURCE)
        by_spec = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        assert by_name.binary.words == by_spec.binary.words


class TestStageCache:
    def test_cache_hit_on_identical_recompile(self):
        tc = toolchain(budget=64)
        first = tc.compile(SOURCE)
        second = tc.compile(SOURCE)
        assert tc.cache.stats.hits == N_STAGES
        assert tc.cache.stats.misses == N_STAGES
        assert first.binary.words == second.binary.words

    def test_cached_and_cold_binaries_bit_identical(self):
        cold = Toolchain(audio_core(), cache=None, budget=64).compile(SOURCE)
        tc = toolchain(budget=64)
        tc.compile(SOURCE)
        warm = tc.compile(SOURCE)
        assert warm.binary.words == cold.binary.words
        assert warm.binary.rom_words == cold.binary.rom_words
        assert warm.run(stimulus()) == cold.run(stimulus())

    def test_source_change_invalidates_everything(self):
        tc = toolchain(budget=64)
        tc.compile(SOURCE)
        state = tc.run_pipeline(VARIANT)
        assert not any(state.cache_hits.values())

    def test_opt_level_change_invalidates_optimize(self):
        # A common subexpression -O1 removes, so -O0 and -O1 lower
        # different graph content.
        cse_source = """
        app cse;
        param k = 0.5;
        input i; output o;
        loop {
          a := mlt(k, i);
          b := mlt(k, i);
          o = add_clip(a, b);
        }
        """
        tc = toolchain(opt=1)
        tc.compile(cse_source)
        state = tc.replace(opt=0).run_pipeline(cse_source)
        assert state.cache_hits["parse"]
        assert not state.cache_hits["optimize"]
        # -O0 lowers the unoptimized graph: different content, so the
        # downstream stages must re-run too.
        assert not state.cache_hits["rtgen"]

    def test_opt_level_change_with_identical_graph_reconverges(self):
        # -O2 adds only strength reduction; on a graph it does not
        # rewrite, the optimize *stage* re-runs but its output content
        # is identical, so lowering and everything after it are reused.
        tc = toolchain(opt=1)
        tc.compile(SOURCE)
        state = tc.replace(opt=2).run_pipeline(SOURCE)
        assert not state.cache_hits["optimize"]
        assert state.cache_hits["rtgen"]
        assert state.cache_hits["assemble"]

    def test_core_change_keeps_machine_independent_prefix(self):
        tc = toolchain()
        tc.compile("app g; input i; output o; loop { o = pass(i); }")
        state = tc.replace(core=tiny_core()).run_pipeline(
            "app g; input i; output o; loop { o = pass(i); }")
        # audio and tiny share the fixed-point format, so parse AND the
        # machine-independent optimize stage are reused; lowering is not.
        assert state.cache_hits["parse"]
        assert state.cache_hits["optimize"]
        assert not state.cache_hits["rtgen"]

    def test_budget_change_reuses_prefix_through_impose(self):
        tc = toolchain(budget=64)
        tc.compile(SOURCE)
        state = tc.replace(budget=32).run_pipeline(SOURCE)
        for name in ("parse", "optimize", "rtgen", "merge", "impose"):
            assert state.cache_hits[name], name
        assert not state.cache_hits["schedule"]

    def test_text_and_dfg_sources_converge_at_optimize(self):
        tc = toolchain(budget=64)
        tc.compile(SOURCE)
        state = tc.run_pipeline(parse_source(SOURCE))
        assert not state.cache_hits["parse"]      # different parse key...
        assert state.cache_hits["optimize"]       # ...same graph content
        assert state.cache_hits["assemble"]

    def test_downstream_mutation_cannot_poison_cache(self):
        tc = toolchain(budget=64)
        first = tc.compile(SOURCE)
        first.rt_program.rts.clear()
        first.binary.words.clear()
        second = tc.compile(SOURCE)
        assert second.binary.words
        assert second.run(stimulus()) == \
            run_reference(second.dfg, stimulus())

    def test_shared_cache_across_toolchains(self):
        cache = StageCache()
        Toolchain(audio_core(), cache=cache, budget=64).compile(SOURCE)
        state = Toolchain(audio_core(), cache=cache, budget=64) \
            .run_pipeline(SOURCE)
        assert all(state.cache_hits.values())

    def test_lru_eviction(self):
        cache = StageCache(max_entries=4)
        Toolchain(audio_core(), cache=cache, budget=64).compile(SOURCE)
        assert len(cache) == 4
        assert cache.stats.evictions == N_STAGES - 4


class TestFingerprints:
    def test_dfg_fingerprint_is_content_keyed(self):
        assert dfg_fingerprint(parse_source(SOURCE)) == \
            dfg_fingerprint(parse_source(SOURCE))
        assert dfg_fingerprint(parse_source(SOURCE)) != \
            dfg_fingerprint(parse_source(VARIANT))

    def test_core_fingerprint_distinguishes_cores(self):
        assert core_fingerprint(audio_core()) == core_fingerprint(audio_core())
        assert core_fingerprint(audio_core()) != core_fingerprint(tiny_core())


# ----------------------------------------------------------------------
# CompileOptions round-trip and fingerprint stability (the properties
# the stage-cache keys rest on).

options_strategy = st.builds(
    CompileOptions,
    opt=st.sampled_from([0, 1, 2]),
    budget=st.one_of(st.none(), st.integers(min_value=1, max_value=4096)),
    cover=st.sampled_from(["greedy", "exact", "edge"]),
    mode=st.sampled_from(["loop", "once", "repeat"]),
    repeat=st.integers(min_value=1, max_value=16),
    restarts=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=-2**31, max_value=2**31),
    stop_after=st.sampled_from([None, *STAGE_NAMES]),
    cache_dir=st.one_of(st.none(), st.text(min_size=1, max_size=20)),
    disk_cache=st.booleans(),
)


class TestOptionsRoundTrip:
    @given(options_strategy)
    def test_to_dict_from_dict_identity(self, options):
        assert CompileOptions.from_dict(options.to_dict()) == options

    @given(options_strategy)
    def test_to_dict_is_json_stable(self, options):
        rendered = json.dumps(options.to_dict(), sort_keys=True)
        assert CompileOptions.from_dict(json.loads(rendered)) == options

    @given(options_strategy)
    def test_fingerprint_is_deterministic(self, options):
        copy = CompileOptions.from_dict(options.to_dict())
        assert options.fingerprint() == copy.fingerprint()

    @given(options_strategy)
    def test_placement_fields_do_not_enter_the_fingerprint(self, options):
        moved = options.replace(cache_dir="/somewhere/else",
                                disk_cache=not options.disk_cache,
                                stop_after=None)
        assert moved.fingerprint() == options.fingerprint()

    @given(options_strategy, st.sampled_from(SEMANTIC_FIELDS))
    def test_semantic_change_changes_the_fingerprint(self, options, field):
        changed = {
            "opt": (options.opt + 1) % 3,
            "budget": (options.budget or 0) + 1,
            "cover": "exact" if options.cover != "exact" else "edge",
            "mode": "once" if options.mode != "once" else "repeat",
            "repeat": options.repeat + 1,
            "restarts": options.restarts + 1,
            "seed": options.seed + 1,
        }[field]
        assert options.replace(**{field: changed}).fingerprint() != \
            options.fingerprint()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(OptionsError, match="unknown option field"):
            CompileOptions.from_dict({"opt": 1, "optlevel": 2})

    def test_fingerprint_rejects_placement_fields(self):
        with pytest.raises(OptionsError, match="non-semantic"):
            CompileOptions().fingerprint("cache_dir")

    def test_fingerprint_is_stable_across_processes(self):
        options = CompileOptions(budget=64, opt=2, cover="exact", seed=3)
        root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        script = ("from repro import CompileOptions; "
                  "print(CompileOptions(budget=64, opt=2, cover='exact', "
                  "seed=3).fingerprint())")
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, env=env,
                              cwd=root, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == options.fingerprint()

    def _schedule_key(self, options):
        """The schedule stage's cache key under ``options``."""
        state = CompileState(request=CompileRequest(
            application=SOURCE, core=audio_core(), options=options))
        for stage in PIPELINE_STAGES:
            key = stage.key(state)
            state.fingerprints[stage.name] = key
            stage.execute(state)
            state.completed.append(stage.name)
            if stage.name == "schedule":
                return key
        raise AssertionError("no schedule stage")

    def test_same_options_same_stage_key_changed_option_cache_miss(self):
        base = CompileOptions(budget=64)
        assert self._schedule_key(base) == \
            self._schedule_key(CompileOptions(budget=64))
        # A changed semantic option is a different key — a cache miss —
        # while cache *placement* is not.
        assert self._schedule_key(base) != \
            self._schedule_key(CompileOptions(budget=32))
        assert self._schedule_key(base) == \
            self._schedule_key(CompileOptions(budget=64, cache_dir="/x",
                                              disk_cache=False))


class TestOptSplit:
    """The explore-facing optimizer split stays bit-exact."""

    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_split_optimizer_preserves_semantics(self, level):
        from repro.opt import optimize_machine_independent, specialize_for_core

        core = audio_core()
        source_dfg = parse_source(SOURCE)
        mi_dfg, _ = optimize_machine_independent(source_dfg, level=level)
        specialized, _ = specialize_for_core(mi_dfg, core, level=level)
        compiled = Toolchain(core, cache=None, opt=0).compile(specialized)
        assert compiled.run(stimulus()) == run_reference(source_dfg, stimulus())

    def test_specialization_is_noop_below_o2(self):
        from repro.opt import specialize_for_core

        dfg = parse_source(SOURCE)
        specialized, report = specialize_for_core(dfg, audio_core(), level=1)
        assert specialized is dfg
        assert not report.changed
