"""Tests for the staged pipeline: sessions, caching, partial compiles.

Satellite coverage of the stage cache: hit on identical re-compile,
invalidation when the source / core / opt level changes, and
bit-identical binaries between cached and cold compiles.
"""

import pytest

from repro import Q15, audio_core, compile_application, run_reference, tiny_core
from repro.pipeline import (
    PIPELINE_STAGES,
    STAGE_NAMES,
    CompileSession,
    StageCache,
    core_fingerprint,
    dfg_fingerprint,
)
from repro.lang import parse_source

SOURCE = """
app opts;
param k = 0.5;
input i; output o;
state s(1);
loop {
  s = i;
  m := mlt(k, s@1);
  o = add_clip(m, i);
}
"""

VARIANT = SOURCE.replace("0.5", "0.25")

N_STAGES = len(PIPELINE_STAGES)


def stimulus():
    return {"i": [Q15.from_float(v) for v in (0.5, -0.25, 0.125, 0.0, 0.9)]}


class TestSessionBasics:
    def test_wrapper_and_session_binaries_identical(self):
        wrapped = compile_application(SOURCE, audio_core(), budget=64)
        session = CompileSession().compile(SOURCE, audio_core(), budget=64)
        assert wrapped.binary.words == session.binary.words

    def test_stage_chain_names(self):
        assert STAGE_NAMES == ("parse", "optimize", "rtgen", "merge",
                               "impose", "schedule", "regalloc", "assemble")

    def test_unknown_stop_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            CompileSession().run(SOURCE, audio_core(), stop_after="codegen")

    def test_partial_compile_stops_after_stage(self):
        state = CompileSession().run(SOURCE, audio_core(), budget=64,
                                     stop_after="schedule")
        assert state.completed == list(STAGE_NAMES[:6])
        assert not state.is_complete
        assert state.schedule.length <= 64
        assert "binary" not in state.artifacts
        with pytest.raises(ValueError, match="stopped after"):
            state.as_compiled()

    def test_partial_then_full_resumes_from_cached_prefix(self):
        session = CompileSession()
        session.run(SOURCE, audio_core(), budget=64, stop_after="schedule")
        state = session.run(SOURCE, audio_core(), budget=64)
        assert all(state.cache_hits[name] for name in STAGE_NAMES[:6])
        assert not state.cache_hits["regalloc"]
        compiled = state.as_compiled()
        assert compiled.run(stimulus()) == \
            run_reference(compiled.dfg, stimulus())


class TestStageCache:
    def test_cache_hit_on_identical_recompile(self):
        session = CompileSession()
        first = session.compile(SOURCE, audio_core(), budget=64)
        second = session.compile(SOURCE, audio_core(), budget=64)
        assert session.cache.stats.hits == N_STAGES
        assert session.cache.stats.misses == N_STAGES
        assert first.binary.words == second.binary.words

    def test_cached_and_cold_binaries_bit_identical(self):
        cold = CompileSession(cache=None).compile(SOURCE, audio_core(),
                                                  budget=64)
        session = CompileSession()
        session.compile(SOURCE, audio_core(), budget=64)
        warm = session.compile(SOURCE, audio_core(), budget=64)
        assert warm.binary.words == cold.binary.words
        assert warm.binary.rom_words == cold.binary.rom_words
        assert warm.run(stimulus()) == cold.run(stimulus())

    def test_source_change_invalidates_everything(self):
        session = CompileSession()
        session.compile(SOURCE, audio_core(), budget=64)
        state = session.run(VARIANT, audio_core(), budget=64)
        assert not any(state.cache_hits.values())

    def test_opt_level_change_invalidates_optimize(self):
        # A common subexpression -O1 removes, so -O0 and -O1 lower
        # different graph content.
        cse_source = """
        app cse;
        param k = 0.5;
        input i; output o;
        loop {
          a := mlt(k, i);
          b := mlt(k, i);
          o = add_clip(a, b);
        }
        """
        session = CompileSession()
        session.compile(cse_source, audio_core(), opt_level=1)
        state = session.run(cse_source, audio_core(), opt_level=0)
        assert state.cache_hits["parse"]
        assert not state.cache_hits["optimize"]
        # -O0 lowers the unoptimized graph: different content, so the
        # downstream stages must re-run too.
        assert not state.cache_hits["rtgen"]

    def test_opt_level_change_with_identical_graph_reconverges(self):
        # -O2 adds only strength reduction; on a graph it does not
        # rewrite, the optimize *stage* re-runs but its output content
        # is identical, so lowering and everything after it are reused.
        session = CompileSession()
        session.compile(SOURCE, audio_core(), opt_level=1)
        state = session.run(SOURCE, audio_core(), opt_level=2)
        assert not state.cache_hits["optimize"]
        assert state.cache_hits["rtgen"]
        assert state.cache_hits["assemble"]

    def test_core_change_keeps_machine_independent_prefix(self):
        session = CompileSession()
        session.compile("app g; input i; output o; loop { o = pass(i); }",
                        audio_core())
        state = session.run("app g; input i; output o; loop { o = pass(i); }",
                            tiny_core())
        # audio and tiny share the fixed-point format, so parse AND the
        # machine-independent optimize stage are reused; lowering is not.
        assert state.cache_hits["parse"]
        assert state.cache_hits["optimize"]
        assert not state.cache_hits["rtgen"]

    def test_budget_change_reuses_prefix_through_impose(self):
        session = CompileSession()
        session.compile(SOURCE, audio_core(), budget=64)
        state = session.run(SOURCE, audio_core(), budget=32)
        for name in ("parse", "optimize", "rtgen", "merge", "impose"):
            assert state.cache_hits[name], name
        assert not state.cache_hits["schedule"]

    def test_text_and_dfg_sources_converge_at_optimize(self):
        session = CompileSession()
        session.compile(SOURCE, audio_core(), budget=64)
        state = session.run(parse_source(SOURCE), audio_core(), budget=64)
        assert not state.cache_hits["parse"]      # different parse key...
        assert state.cache_hits["optimize"]       # ...same graph content
        assert state.cache_hits["assemble"]

    def test_downstream_mutation_cannot_poison_cache(self):
        session = CompileSession()
        first = session.compile(SOURCE, audio_core(), budget=64)
        first.rt_program.rts.clear()
        first.binary.words.clear()
        second = session.compile(SOURCE, audio_core(), budget=64)
        assert second.binary.words
        assert second.run(stimulus()) == \
            run_reference(second.dfg, stimulus())

    def test_shared_cache_across_sessions(self):
        cache = StageCache()
        CompileSession(cache=cache).compile(SOURCE, audio_core(), budget=64)
        state = CompileSession(cache=cache).run(SOURCE, audio_core(),
                                                budget=64)
        assert all(state.cache_hits.values())

    def test_lru_eviction(self):
        cache = StageCache(max_entries=4)
        CompileSession(cache=cache).compile(SOURCE, audio_core(), budget=64)
        assert len(cache) == 4
        assert cache.stats.evictions == N_STAGES - 4


class TestFingerprints:
    def test_dfg_fingerprint_is_content_keyed(self):
        assert dfg_fingerprint(parse_source(SOURCE)) == \
            dfg_fingerprint(parse_source(SOURCE))
        assert dfg_fingerprint(parse_source(SOURCE)) != \
            dfg_fingerprint(parse_source(VARIANT))

    def test_core_fingerprint_distinguishes_cores(self):
        assert core_fingerprint(audio_core()) == core_fingerprint(audio_core())
        assert core_fingerprint(audio_core()) != core_fingerprint(tiny_core())


class TestOptSplit:
    """The explore-facing optimizer split stays bit-exact."""

    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_split_optimizer_preserves_semantics(self, level):
        from repro.opt import optimize_machine_independent, specialize_for_core

        core = audio_core()
        source_dfg = parse_source(SOURCE)
        mi_dfg, _ = optimize_machine_independent(source_dfg, level=level)
        specialized, _ = specialize_for_core(mi_dfg, core, level=level)
        compiled = compile_application(specialized, core, opt_level=0)
        assert compiled.run(stimulus()) == run_reference(source_dfg, stimulus())

    def test_specialization_is_noop_below_o2(self):
        from repro.opt import specialize_for_core

        dfg = parse_source(SOURCE)
        specialized, report = specialize_for_core(dfg, audio_core(), level=1)
        assert specialized is dfg
        assert not report.changed
