"""Tests for the pluggable cache-backend layer (repro.pipeline.backend).

The contract under test: MemoryBackend speaks the exact envelope the
disk backend writes (so corruption and version skew degrade to misses,
never errors), open_backend maps spec strings to shared instances, and
— the PR-4 regression class — every cache-like object is truthy even
when empty.
"""

import pytest

from repro import Toolchain, audio_core
from repro.arch import ExploreCache
from repro.pipeline import (
    CacheBackend,
    DiskCache,
    MemoryBackend,
    StageCache,
    backend_stats,
    open_backend,
)
from repro.pipeline import diskcache
from repro.pipeline.backend import _MEMORY_BACKENDS

SOURCE = """
app backend;
param k = 0.5;
input i; output o;
state s(1);
loop {
  s = i;
  m := mlt(k, s@1);
  o = add_clip(m, i);
}
"""


class TestProtocol:
    def test_both_backends_satisfy_the_protocol(self, tmp_path):
        assert isinstance(MemoryBackend(), CacheBackend)
        assert isinstance(DiskCache(tmp_path), CacheBackend)

    def test_stagecache_accepts_any_backend(self):
        backend = MemoryBackend()
        cache = StageCache(disk=backend)
        toolchain = Toolchain(audio_core(), cache=cache, budget=64)
        first = toolchain.compile(SOURCE)
        assert backend.keys()  # stages were published
        # A cold memory tier over the same backend restores everything.
        warm = Toolchain(audio_core(), cache=StageCache(disk=backend),
                         budget=64)
        state = warm.run_pipeline(SOURCE)
        assert all(state.cache_hits.values())
        assert state.as_compiled().binary.words == first.binary.words


class TestTruthiness:
    """bool(empty cache) is True — the PR-4 `cache or default` bug class.

    Every cache-like object defines __len__, so without an explicit
    __bool__ an *empty* one is falsy and `cache or Default()` silently
    replaces a caller's shared instance.  Pinned here for all four.
    """

    def test_empty_stage_cache_is_true(self):
        assert bool(StageCache()) is True
        assert len(StageCache()) == 0

    def test_empty_explore_cache_is_true(self):
        assert bool(ExploreCache()) is True
        assert len(ExploreCache()) == 0

    def test_empty_disk_cache_is_true(self, tmp_path):
        assert bool(DiskCache(tmp_path)) is True
        assert len(DiskCache(tmp_path)) == 0

    def test_empty_memory_backend_is_true(self):
        assert bool(MemoryBackend()) is True
        assert len(MemoryBackend()) == 0


class TestMemoryBackend:
    def test_roundtrip(self):
        backend = MemoryBackend()
        schema = {"x": 1}
        backend.put("k" * 64, {"x": [1, 2, 3]}, schema)
        assert backend.get("k" * 64, schema) == {"x": [1, 2, 3]}
        assert backend.stats.hits == 1 and backend.stats.stores == 1

    def test_miss_is_none(self):
        backend = MemoryBackend()
        assert backend.get("absent") is None
        assert backend.stats.misses == 1

    def test_corrupt_entry_degrades_to_miss(self):
        backend = MemoryBackend()
        backend._entries["bad"] = (b"not an envelope", 0.0)
        assert backend.get("bad") is None
        assert backend.stats.corrupt == 1
        assert "bad" not in backend.keys()  # dropped, not retried forever

    def test_version_skew_degrades_to_miss(self, monkeypatch):
        backend = MemoryBackend()
        backend.put("skewed", {"x": 1}, {"x": 1})
        monkeypatch.setattr(diskcache, "PIPELINE_VERSION", 999)
        assert backend.get("skewed", {"x": 1}) is None
        assert backend.stats.version_skips == 1

    def test_unpicklable_store_degrades(self):
        backend = MemoryBackend()
        backend.put("gen", (n for n in range(3)))  # generators don't pickle
        assert backend.stats.write_errors == 1
        assert backend.keys() == []

    def test_size_bound_evicts_at_put(self):
        backend = MemoryBackend(max_bytes=1)
        backend.put("a", {"pad": "x" * 100})
        backend.put("b", {"pad": "y" * 100})
        # The bound is enforced at put time (no entry fits under 1 byte).
        assert backend.size_bytes() <= 1
        assert backend.stats.evictions >= 1

    def test_delete(self):
        backend = MemoryBackend()
        backend.put("a", {"x": 1})
        assert backend.delete("a") is True
        assert backend.delete("a") is False


class TestGc:
    def test_gc_to_zero_empties_the_store(self):
        backend = MemoryBackend()
        for i in range(4):
            backend.put(f"k{i}", {"i": i})
        removed = backend.gc(0)
        assert removed == 4
        assert backend.keys() == []

    def test_min_age_protects_fresh_entries(self):
        backend = MemoryBackend()
        backend.put("fresh", {"x": 1})
        # Everything was stored milliseconds ago; an hour's min_age
        # means gc removes nothing even with a zero byte bound — this
        # is the in-flight-compile guard.
        assert backend.gc(0, min_age=3600.0) == 0
        assert backend.keys() == ["fresh"]

    def test_pinned_entries_survive(self):
        backend = MemoryBackend()
        backend.put("keep", {"x": 1})
        backend.put("drop", {"x": 2})
        removed = backend.gc(0, pinned=["keep"])
        assert removed == 1
        assert backend.keys() == ["keep"]

    def test_disk_gc_min_age_and_pinned(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put("a" * 64, {"x": 1}, {"x": 1})
        disk.put("b" * 64, {"x": 2}, {"x": 2})
        assert disk.gc(0, min_age=3600.0) == 0
        assert disk.gc(0, pinned=["a" * 64]) == 1
        assert disk.keys() == ["a" * 64]
        assert disk.gc(0) == 1
        assert disk.keys() == []


class TestVerify:
    def test_clean_store(self):
        backend = MemoryBackend()
        backend.put("a", {"x": 1})
        report = backend.verify()
        assert report.checked == 1 and report.clean
        assert report.to_dict()["clean"] is True

    def test_corrupt_entries_reported_and_dropped(self):
        backend = MemoryBackend()
        backend.put("good", {"x": 1})
        backend._entries["bad"] = (b"\x00" * 16, 0.0)
        report = backend.verify()
        assert report.checked == 2
        assert report.corrupt == 1 and not report.clean
        assert report.dropped == ["bad"]
        assert backend.keys() == ["good"]

    def test_disk_verify_drops_truncated_entry(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put("a" * 64, {"x": 1}, {"x": 1})
        victim = next(tmp_path.glob("objects/*/*.rpdc"))
        victim.write_bytes(victim.read_bytes()[:10])
        report = disk.verify()
        assert report.corrupt == 1
        assert disk.keys() == []


class TestOpenBackend:
    def test_path_spec_opens_disk(self, tmp_path):
        backend = open_backend(str(tmp_path / "store"))
        assert isinstance(backend, DiskCache)

    def test_memory_spec_is_shared_by_name(self):
        _MEMORY_BACKENDS.pop("t-shared", None)
        a = open_backend("memory:t-shared")
        b = open_backend("memory:t-shared")
        assert a is b
        a.put("k", {"x": 1})
        assert b.get("k") == {"x": 1}

    def test_bare_memory_scheme_names_default(self):
        assert open_backend("memory:") is open_backend("memory:default")

    def test_distinct_names_are_distinct_stores(self):
        _MEMORY_BACKENDS.pop("t-one", None)
        _MEMORY_BACKENDS.pop("t-two", None)
        assert open_backend("memory:t-one") is not open_backend(
            "memory:t-two")

    def test_toolchain_accepts_memory_spec_as_cache_dir(self):
        _MEMORY_BACKENDS.pop("t-toolchain", None)
        toolchain = Toolchain(audio_core(), budget=64,
                              cache_dir="memory:t-toolchain")
        compiled = toolchain.compile(SOURCE)
        backend = open_backend("memory:t-toolchain")
        assert backend.keys()
        warm = Toolchain(audio_core(), budget=64,
                         cache_dir="memory:t-toolchain")
        state = warm.run_pipeline(SOURCE)
        assert all(state.cache_hits.values())
        assert state.as_compiled().binary.words == compiled.binary.words


class TestBackendStats:
    def test_memory_stats_shape(self):
        backend = MemoryBackend(name="t-stats")
        backend.put("k", {"x": 1})
        payload = backend_stats(backend)
        assert payload["backend"] == "MemoryBackend"
        assert payload["entries"] == 1
        assert payload["bytes"] > 0
        assert payload["location"] == "t-stats"
        assert payload["session"]["stores"] == 1

    def test_disk_stats_shape(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put("a" * 64, {"x": 1}, {"x": 1})
        payload = backend_stats(disk)
        assert payload["backend"] == "DiskCache"
        assert payload["entries"] == 1
        assert payload["location"] == str(tmp_path)


class TestExploreCacheBackend:
    def test_explore_cache_over_memory_backend(self):
        cache = ExploreCache(disk=open_backend("memory:t-explore"))
        assert bool(cache) is True
