"""Tests for execution intervals, bipartite pruning, the exact
scheduler and time-loop folding (paper, section 8 / ref [11])."""

import pytest

from repro.arch import audio_core, tiny_core
from repro.core import ClassTable, InstructionSet, impose_instruction_set
from repro.errors import BudgetExceededError, SchedulingError
from repro.lang import DfgBuilder, parse_source
from repro.rtgen import generate_rts
from repro.sched import (
    ExecutionInterval,
    build_dependence_graph,
    exact_schedule,
    execution_intervals,
    hall_window_check,
    list_schedule,
    maximum_matching,
    modulo_schedule,
    recurrence_mii,
    resource_mii,
    tighten_with_decision,
)

TREBLE = """
app treble;
param d1 = 0.40, d2 = -0.20, e1 = 0.30;
input IN; output out;
state u(2), v(2);
loop {
  u  = IN;
  x0 := u@2;
  m  := mlt(d2, x0);
  a  := pass(m);
  x2 := v@1;
  m  := mlt(e1, x2);
  a  := add(m, a);
  x1 := u@1;
  m  := mlt(d1, x1);
  rd := add_clip(m, a);
  v  = rd;
  out = rd;
}
"""


def treble_graph():
    core = audio_core()
    program = generate_rts(parse_source(TREBLE), core)
    table = ClassTable.from_core(core)
    iset = InstructionSet.from_desired(table.names, core.instruction_types)
    program.rts = impose_instruction_set(program.rts, table, iset).rts
    return program, build_dependence_graph(program)


class TestExecutionIntervals:
    def test_asap_alap_bracket_list_schedule(self):
        _, graph = treble_graph()
        schedule = list_schedule(graph, budget=64)
        intervals = execution_intervals(graph, 64)
        for rt, cycle in schedule.cycle_of.items():
            assert intervals[rt].contains(cycle)

    def test_budget_below_critical_path_raises(self):
        _, graph = treble_graph()
        with pytest.raises(SchedulingError, match="critical path|empty"):
            execution_intervals(graph, 2)

    def test_tightening_propagates(self):
        _, graph = treble_graph()
        intervals = execution_intervals(graph, 64)
        # Fixing any RT at its ALAP forces successors after it.
        rt = max(intervals, key=lambda r: intervals[r].width)
        fixed = tighten_with_decision(intervals, graph, rt, intervals[rt].alap)
        assert fixed is not None
        assert fixed[rt].width == 1

    def test_tightening_outside_interval_fails(self):
        _, graph = treble_graph()
        intervals = execution_intervals(graph, 64)
        rt = next(iter(intervals))
        assert tighten_with_decision(intervals, graph, rt,
                                     intervals[rt].alap + 1) is None


class TestHallCheck:
    def test_feasible_intervals(self):
        intervals = [ExecutionInterval(0, 2), ExecutionInterval(0, 2),
                     ExecutionInterval(1, 2)]
        assert hall_window_check(intervals)

    def test_overfull_window(self):
        intervals = [ExecutionInterval(0, 1)] * 3
        assert not hall_window_check(intervals)

    def test_empty_is_feasible(self):
        assert hall_window_check([])

    def test_agrees_with_matching(self):
        cases = [
            [ExecutionInterval(a, b) for a, b in case]
            for case in [
                [(0, 0), (0, 1), (1, 2)],
                [(0, 0), (0, 0)],
                [(0, 3)] * 4,
                [(0, 3)] * 5,
                [(1, 2), (1, 2), (2, 3)],
            ]
        ]
        from repro.rtgen import RT, ResourceUse

        for intervals in cases:
            rts = {
                RT(opu="x", operation="op", operands=(), destinations=(),
                   uses=(ResourceUse("x", "op"),)): iv
                for iv in intervals
            }
            matching = maximum_matching(rts)
            assert (len(matching) == len(rts)) == hall_window_check(intervals)

    def test_matching_respects_intervals(self):
        from repro.rtgen import RT, ResourceUse

        rts = {
            RT(opu="x", operation="op", operands=(), destinations=(),
               uses=(ResourceUse("x", "op"),)): ExecutionInterval(i, i + 2)
            for i in range(4)
        }
        matching = maximum_matching(rts)
        assert len(matching) == 4
        assert len(set(matching.values())) == 4
        for rt, cycle in matching.items():
            assert rts[rt].contains(cycle)


class TestExactScheduler:
    def small_graph(self):
        source = """
        app small;
        param k0 = 0.5, k1 = 0.25;
        input i; output o;
        state s(1);
        loop {
          s = i;
          m0 := mlt(k0, s@1);
          m1 := mlt(k1, i);
          o = add_clip(m0, m1);
        }
        """
        core = audio_core()
        program = generate_rts(parse_source(source), core)
        table = ClassTable.from_core(core)
        iset = InstructionSet.from_desired(table.names, core.instruction_types)
        program.rts = impose_instruction_set(program.rts, table, iset).rts
        return program, build_dependence_graph(program)

    def test_finds_feasible_schedule(self):
        _, graph = self.small_graph()
        heuristic = list_schedule(graph)
        schedule, stats = exact_schedule(graph, budget=heuristic.length)
        schedule.validate(graph)
        assert schedule.length <= heuristic.length
        assert stats.nodes_visited > 0

    def test_proves_infeasibility(self):
        _, graph = self.small_graph()
        with pytest.raises(BudgetExceededError):
            exact_schedule(graph, budget=4)

    def test_matching_pruning_reduces_nodes(self):
        _, graph = self.small_graph()
        budget = list_schedule(graph).length
        _, with_pruning = exact_schedule(graph, budget=budget)
        _, without = exact_schedule(graph, budget=budget,
                                    use_matching_pruning=False)
        assert with_pruning.nodes_visited <= without.nodes_visited

    def test_node_cap(self):
        # Scheduling needs at least one node per transfer; a tiny cap
        # must make the search give up rather than run unbounded.
        _, graph = treble_graph()
        with pytest.raises(SchedulingError, match="gave up"):
            exact_schedule(graph, budget=64, max_nodes=5)

    def test_exact_beats_list_on_treble(self):
        # The treble block alone packs into very few cycles; the exact
        # scheduler proves a 9-cycle schedule exists.
        _, graph = treble_graph()
        schedule, _ = exact_schedule(graph, budget=9)
        schedule.validate(graph)


class TestFolding:
    def test_mii_bounds(self):
        _, graph = treble_graph()
        assert resource_mii(graph.rts) >= 6   # six ACU transfers
        assert recurrence_mii(graph) >= 1

    def test_folding_at_most_unfolded_length(self):
        # Section 7: folding "could be reduced a few cycles".
        _, graph = treble_graph()
        unfolded = list_schedule(graph)
        folded = modulo_schedule(graph, budget_hint=unfolded.length)
        folded.validate(graph)
        assert folded.initiation_interval <= unfolded.length

    def test_folding_respects_resource_mii(self):
        _, graph = treble_graph()
        folded = modulo_schedule(graph, budget_hint=64)
        assert folded.initiation_interval >= resource_mii(graph.rts)

    def test_folding_tiny_pipeline(self):
        b = DfgBuilder("chain")
        i = b.input("i")
        x = b.op("pass", i)
        for _ in range(3):
            x = b.op("pass", x)
        b.output("o", x)
        program = generate_rts(b.build(), tiny_core())
        graph = build_dependence_graph(program)
        unfolded = list_schedule(graph)
        folded = modulo_schedule(graph, budget_hint=unfolded.length)
        # A pure chain on one ALU: II = ALU op count, shorter than the
        # serial chain plus IO.
        assert folded.initiation_interval < unfolded.length
