"""Tests for RT-level register-file/bus merging (step 2a, figure 1b)."""

import pytest

from repro import Q15, Toolchain, audio_core, run_reference
from repro.arch import MergeSpec
from repro.core import apply_merges, merged_register_file_sizes
from repro.errors import ArchitectureError
from repro.lang import parse_source
from repro.rtgen import generate_rts
from repro.sched import build_dependence_graph, list_schedule

SOURCE = """
app small;
param k0 = 0.5, k1 = -0.25;
input i; output o;
state s(1);
loop {
  s = i;
  m0 := mlt(k0, s@1);
  a  := pass(m0);
  m1 := mlt(k1, i);
  o = add_clip(m1, a);
}
"""


def merged_program(spec):
    program = generate_rts(parse_source(SOURCE), audio_core())
    return program, apply_merges(program, spec)


class TestSpecValidation:
    def test_unknown_register_file(self):
        spec = MergeSpec().merge_register_files("m", ["rf_alu_p0", "ghost"])
        with pytest.raises(ArchitectureError, match="unknown register file"):
            spec.validate(audio_core().datapath)

    def test_single_member_rejected(self):
        spec = MergeSpec().merge_register_files("m", ["rf_alu_p0"])
        with pytest.raises(ArchitectureError, match="at least two"):
            spec.validate(audio_core().datapath)

    def test_file_in_two_merges_rejected(self):
        spec = (MergeSpec()
                .merge_register_files("m1", ["rf_alu_p0", "rf_alu_p1"])
                .merge_register_files("m2", ["rf_alu_p0", "rf_mult_data"]))
        with pytest.raises(ArchitectureError, match="two merges"):
            spec.validate(audio_core().datapath)

    def test_unknown_bus(self):
        spec = MergeSpec().merge_buses("b", ["bus_alu", "ghost"])
        with pytest.raises(ArchitectureError, match="unknown bus"):
            spec.validate(audio_core().datapath)

    def test_empty_spec(self):
        assert MergeSpec().is_empty
        assert not MergeSpec().merge_buses("b", ["bus_alu", "bus_mult"]).is_empty


class TestRewriting:
    def test_write_ports_are_shared(self):
        spec = MergeSpec().merge_register_files(
            "rf_alu", ["rf_alu_p0", "rf_alu_p1"])
        _, merged = merged_program(spec)
        resources = {u.resource for rt in merged.rts for u in rt.uses}
        assert "rf_alu:wr" in resources
        assert "rf_alu_p0:wr" not in resources
        assert "rf_alu_p1:wr" not in resources

    def test_read_ports_keep_their_identity(self):
        # Port wiring survives merging: a 2-operand ALU op must still be
        # executable (it reads the merged file through both its ports).
        spec = MergeSpec().merge_register_files(
            "rf_alu", ["rf_alu_p0", "rf_alu_p1"])
        _, merged = merged_program(spec)
        read_resources = {
            u.resource for rt in merged.rts for u in rt.uses
            if ":rd" in u.resource and u.resource.startswith("rf_alu")
        }
        assert len(read_resources) == 2   # one per ALU port

    def test_operands_and_destinations_renamed(self):
        spec = MergeSpec().merge_register_files(
            "rf_alu", ["rf_alu_p0", "rf_alu_p1"])
        _, merged = merged_program(spec)
        for rt in merged.rts:
            for operand in rt.operands:
                if operand.is_register:
                    assert operand.register_file not in (
                        "rf_alu_p0", "rf_alu_p1")
            for dest in rt.destinations:
                assert dest.register_file not in ("rf_alu_p0", "rf_alu_p1")

    def test_bus_merge_renames_bus_usages(self):
        spec = MergeSpec().merge_buses("bus_ma", ["bus_mult", "bus_alu"])
        _, merged = merged_program(spec)
        resources = {u.resource for rt in merged.rts for u in rt.uses}
        assert "bus_ma" in resources
        assert "bus_mult" not in resources
        assert "bus_alu" not in resources

    def test_original_program_untouched(self):
        spec = MergeSpec().merge_buses("bus_ma", ["bus_mult", "bus_alu"])
        original, _ = merged_program(spec)
        resources = {u.resource for rt in original.rts for u in rt.uses}
        assert "bus_mult" in resources

    def test_merged_capacity_is_sum(self):
        spec = MergeSpec().merge_register_files(
            "rf_alu", ["rf_alu_p0", "rf_alu_p1"])
        program = generate_rts(parse_source(SOURCE), audio_core())
        sizes = merged_register_file_sizes(program, spec)
        datapath = audio_core().datapath
        expected = (datapath.register_file("rf_alu_p0").size
                    + datapath.register_file("rf_alu_p1").size)
        assert sizes["rf_alu"] == expected
        assert sizes["rf_mult_data"] == datapath.register_file("rf_mult_data").size


class TestSchedulingEffect:
    def test_bus_merge_never_shortens(self):
        program = generate_rts(parse_source(SOURCE), audio_core())
        baseline = list_schedule(build_dependence_graph(program))
        spec = MergeSpec().merge_buses("bus_ma", ["bus_mult", "bus_alu"])
        merged = apply_merges(program, spec)
        merged_schedule = list_schedule(build_dependence_graph(merged))
        assert merged_schedule.length >= baseline.length

    def test_merged_compilation_still_bit_exact(self):
        spec = MergeSpec().merge_buses("bus_ma", ["bus_mult", "bus_alu"])
        compiled = Toolchain(audio_core(), cache=None) \
            .compile(parse_source(SOURCE), merges=spec)
        stimulus = {"i": [Q15.from_float(v) for v in (0.5, -0.5, 0.25, 0.0)]}
        assert compiled.run(stimulus) == run_reference(compiled.dfg, stimulus)
