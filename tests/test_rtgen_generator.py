"""Tests for RT generation: binding, routing, memory layout, emission."""

import pytest

from repro.arch import audio_core, fir_core, tiny_core
from repro.errors import BindingError, RoutingError
from repro.lang import DfgBuilder, parse_source
from repro.rtgen import MemoryLayout, bind, generate_rts, live_nodes

TREBLE = """
app treble;
param d1 = 0.40, d2 = -0.20, e1 = 0.30;
input IN; output out;
state u(2), v(2);
loop {
  u  = IN;
  x0 := u@2;
  m  := mlt(d2, x0);
  a  := pass(m);
  x2 := v@1;
  m  := mlt(e1, x2);
  a  := add(m, a);
  x1 := u@1;
  m  := mlt(d1, x1);
  rd := add_clip(m, a);
  v  = rd;
  out = rd;
}
"""


def treble_program():
    return generate_rts(parse_source(TREBLE), audio_core())


class TestMemoryLayout:
    def layout(self):
        return MemoryLayout.for_dfg(parse_source(TREBLE), ram_size=128)

    def test_window_and_modulus(self):
        layout = self.layout()
        assert layout.n_states == 2
        assert layout.window == 3      # max depth 2 -> slots for 3 frames
        assert layout.modulus == 6

    def test_slots_never_collide_within_a_frame(self):
        layout = self.layout()
        for frame in range(10):
            fp = layout.frame_pointer(frame)
            addresses = set()
            for state in ("u", "v"):
                addresses.add((fp + layout.write_offset(state)) % layout.modulus)
                for k in (1, 2):
                    addresses.add((fp + layout.read_offset(state, k)) % layout.modulus)
            assert len(addresses) == 6  # 2 writes + 4 reads, all distinct

    def test_read_offset_addresses_past_write(self):
        layout = self.layout()
        for frame in range(3, 12):
            for k in (1, 2):
                read_addr = (
                    layout.frame_pointer(frame) + layout.read_offset("u", k)
                ) % layout.modulus
                write_addr = (
                    layout.frame_pointer(frame - k) + layout.write_offset("u")
                ) % layout.modulus
                assert read_addr == write_addr

    def test_ram_too_small(self):
        with pytest.raises(RoutingError, match="RAM words"):
            MemoryLayout.for_dfg(parse_source(TREBLE), ram_size=4)


class TestBinding:
    def test_audio_binding_is_forced(self):
        dfg = parse_source(TREBLE)
        binding = bind(dfg, audio_core())
        assert binding.state_ram == {"u": "ram", "v": "ram"}
        assert binding.ram_acu == {"ram": "acu"}
        assert binding.rom_opu == "rom"
        assert binding.const_opu == "prg_c"
        assert binding.input_opu == {"IN": "ipb"}
        assert binding.output_opu == {"out": "opb_1"}

    def test_round_robin_output_binding(self):
        b = DfgBuilder("x")
        i = b.input("i")
        for port in ("o0", "o1", "o2", "o3"):
            b.output(port, b.op("pass", b.op("pass_clip", i)))
        binding = bind(b.build(), audio_core())
        assert binding.output_opu == {
            "o0": "opb_1", "o1": "opb_2", "o2": "opb_1", "o3": "opb_2",
        }

    def test_explicit_io_binding(self):
        b = DfgBuilder("x")
        b.output("o0", b.op("pass_clip", b.input("i")))
        binding = bind(b.build(), audio_core(), io_binding={"o0": "opb_2"})
        assert binding.output_opu == {"o0": "opb_2"}

    def test_unknown_io_binding_rejected(self):
        b = DfgBuilder("x")
        b.output("o0", b.op("pass_clip", b.input("i")))
        with pytest.raises(BindingError, match="unknown"):
            bind(b.build(), audio_core(), io_binding={"o0": "nonexistent"})

    def test_state_needs_ram(self):
        dfg = parse_source(TREBLE)
        with pytest.raises(BindingError, match="no RAM"):
            bind(dfg, tiny_core())

    def test_unsupported_operation(self):
        b = DfgBuilder("x")
        b.output("o", b.op("fft", b.input("i")))
        with pytest.raises(BindingError, match="supports operation 'fft'"):
            bind(b.build(), tiny_core())


class TestLiveness:
    def test_dead_code_is_dropped(self):
        b = DfgBuilder("dead")
        i = b.input("i")
        b.op("pass", i)  # dead
        b.output("o", b.op("pass", i))
        dfg = b.build()
        live = live_nodes(dfg)
        assert len(live) == 3  # input, one pass, output

    def test_dead_param_not_fetched(self):
        b = DfgBuilder("deadparam")
        b.param("unused", 0.5)
        b.output("o", b.op("pass", b.input("i")))
        program = generate_rts(b.build(), tiny_core())
        assert all(rt.operation != "const" for rt in program.rts)


class TestTrebleGeneration:
    def test_opu_histogram_matches_structure(self):
        program = treble_program()
        histogram = program.opu_histogram()
        # 3 delay reads + 2 state writes (u = IN, v = rd) -> 5 RAM ops,
        # 5 address computations + 1 frame-pointer advance -> 6 ACU ops.
        assert histogram["ram"] == 5
        assert histogram["acu"] == 6
        assert histogram["mult"] == 3
        assert histogram["alu"] == 3          # pass, add, add_clip
        assert histogram["rom"] == 3          # three coefficients
        assert histogram["prg_c"] == 3        # their ROM addresses
        assert histogram["ipb"] == 1
        assert histogram["opb_1"] == 1

    def test_rom_layout_covers_params(self):
        program = treble_program()
        assert set(program.rom.address) == {"d1", "d2", "e1"}
        assert len(program.rom.words) == 3

    def test_loop_carry_for_frame_pointer(self):
        program = treble_program()
        assert len(program.loop_carries) == 1
        carry = program.loop_carries[0]
        assert carry.register_file == "rf_acu"
        producers = program.producers()
        assert carry.new in producers
        assert carry.old not in producers  # live-in, produced last iteration

    def test_multicast_of_state_value(self):
        # rd goes both to the state write (rf_ram_data) and the output
        # port (rf_opb1): one RT, two destinations.
        program = treble_program()
        add_clips = [rt for rt in program.rts if rt.operation == "add_clip"]
        assert len(add_clips) == 1
        dest_rfs = {d.register_file for d in add_clips[0].destinations}
        assert dest_rfs == {"rf_ram_data", "rf_opb1"}

    def test_every_register_operand_has_a_producer_or_live_in(self):
        program = treble_program()
        producers = program.producers()
        live_ins = program.live_in_values()
        for rt in program.rts:
            for value in rt.read_values:
                assert value in producers or value in live_ins

    def test_operand_register_files_match_destinations(self):
        # Every value read from register file F must have been written
        # into F by its producer (multicast included).
        program = treble_program()
        written: dict[tuple[int, str], bool] = {}
        for rt in program.rts:
            for dest in rt.destinations:
                written[(dest.value, dest.register_file)] = True
        live_ins = program.live_in_values()
        for rt in program.rts:
            for operand in rt.operands:
                if not operand.is_register:
                    continue
                if operand.value in live_ins:
                    assert live_ins[operand.value].register_file == operand.register_file
                    continue
                assert written.get((operand.value, operand.register_file)), (
                    f"{rt}: reads v{operand.value} from "
                    f"{operand.register_file}, never written there"
                )

    def test_mult_operands_in_port_order(self):
        # Port 0 = data, port 1 = coefficient: the generator must swap
        # mlt(d2, x0) so the coefficient reaches rf_mult_coef.
        program = treble_program()
        for rt in program.rts:
            if rt.operation != "mult":
                continue
            assert rt.operands[0].register_file == "rf_mult_data"
            assert rt.operands[1].register_file == "rf_mult_coef"

    def test_fir_core_params_skip_rom(self):
        program = generate_rts(parse_source(TREBLE), fir_core())
        # No ROM on the FIR core: coefficients are immediate constants.
        consts = [rt for rt in program.rts if rt.operation == "const"]
        assert len(consts) == 3
        assert all(not rt.operands[0].is_register for rt in consts)


class TestCopyInsertion:
    def test_input_to_output_needs_alu_copy_on_audio_core(self):
        b = DfgBuilder("io")
        b.output("o", b.input("i"))
        program = generate_rts(b.build(), audio_core())
        operations = [(rt.opu, rt.operation) for rt in program.rts]
        assert ("alu", "pass") in operations  # inserted data-routing hop
        assert ("ipb", "read") in operations
        assert ("opb_1", "write") in operations

    def test_direct_route_needs_no_copy_on_tiny_core(self):
        b = DfgBuilder("io")
        b.output("o", b.input("i"))
        program = generate_rts(b.build(), tiny_core())
        assert [rt.operation for rt in program.rts] == ["read", "write"]
