"""Randomised differential testing: compiler vs reference interpreter.

Hypothesis generates random time-loop applications (random DAGs of
operations over inputs, coefficients and delayed states); each is
compiled through the full pipeline onto a core and executed on the
cycle-accurate simulator.  Output streams must equal the reference
interpreter's bit-exactly.

One generator covers three cores (tiny / fir / audio-style), giving the
strongest end-to-end oracle in the suite: any bug in RT generation,
routing, conflict modelling, scheduling, register allocation, encoding
or the machine model shows up as a stream mismatch.
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Q15, Toolchain, audio_core, fir_core, run_batch, tiny_core
from repro.apps import (
    adaptive_core,
    audio_application,
    audio_io_binding,
    channel_frontend_application,
    fir_application,
    lms_application,
    stress_application,
)
from repro.errors import ReproError
from repro.gen import available_engines
from repro.lang import DfgBuilder, run_reference

from stream_helpers import random_streams

# Operation vocabulary per core: (name, arity, needs_param_port).
TINY_OPS = [("add", 2), ("sub", 2), ("pass", 1)]
FILTER_OPS = [("add", 2), ("add_clip", 2), ("pass", 1), ("pass_clip", 1)]


@st.composite
def random_application(draw, allow_states: bool, allow_mult: bool,
                       max_ops: int = 12):
    """Build a random but well-formed DFG via the builder."""
    b = DfgBuilder("random")
    values = [b.input("i0")]
    if draw(st.booleans()):
        values.append(b.input("i1"))

    states = []
    if allow_states:
        for index in range(draw(st.integers(min_value=0, max_value=2))):
            depth = draw(st.integers(min_value=1, max_value=3))
            states.append((b.state(f"s{index}", depth), depth))

    n_params = 0
    n_ops = draw(st.integers(min_value=1, max_value=max_ops))
    for _ in range(n_ops):
        choices = ["alu"]
        if allow_mult:
            choices.append("mult")
        if states:
            choices.append("delay")
        kind = draw(st.sampled_from(choices))
        if kind == "delay":
            state, depth = draw(st.sampled_from(states))
            k = draw(st.integers(min_value=1, max_value=depth))
            values.append(b.delay(state, k))
        elif kind == "mult":
            coefficient = b.param(
                f"c{n_params}",
                draw(st.floats(min_value=-0.99, max_value=0.99,
                               allow_nan=False)),
            )
            n_params += 1
            values.append(b.op("mult", coefficient, draw(st.sampled_from(values))))
        else:
            ops = FILTER_OPS if allow_mult else TINY_OPS
            name, arity = draw(st.sampled_from(ops))
            args = [draw(st.sampled_from(values)) for _ in range(arity)]
            values.append(b.op(name, *args))

    # Every state must be written once; outputs tap the last values.
    for index, (state, _) in enumerate(states):
        b.write(state, draw(st.sampled_from(values)))
    b.output("o0", values[-1])
    if draw(st.booleans()) and len(values) >= 2:
        b.output("o1", draw(st.sampled_from(values)))
    return b.build()


def roundtrip(dfg, core, n_frames=6, seed=0):
    """Compile; if routable, simulate and compare with the reference."""
    import random

    rng = random.Random(seed)
    stimulus = {
        port: [rng.randint(Q15.min_value, Q15.max_value)
               for _ in range(n_frames)]
        for port in dfg.inputs
    }
    try:
        compiled = Toolchain(core, cache=None).compile(dfg)
    except ReproError:
        # Random programs may exceed a small core's routes or register
        # files; rejection with a diagnostic is the documented contract.
        return None
    expected = run_reference(dfg, stimulus, n_frames)
    actual = compiled.run(stimulus, n_frames)
    assert actual == expected
    return compiled


class TestDifferential:
    @given(random_application(allow_states=False, allow_mult=False))
    @settings(max_examples=40, deadline=None)
    def test_tiny_core(self, dfg):
        roundtrip(dfg, tiny_core())

    @given(random_application(allow_states=True, allow_mult=True))
    @settings(max_examples=40, deadline=None)
    def test_fir_core(self, dfg):
        roundtrip(dfg, fir_core())

    @given(random_application(allow_states=True, allow_mult=True))
    @settings(max_examples=30, deadline=None)
    def test_audio_core(self, dfg):
        roundtrip(dfg, audio_core())

    @given(random_application(allow_states=True, allow_mult=True))
    @settings(max_examples=20, deadline=None)
    def test_adaptive_core(self, dfg):
        roundtrip(dfg, adaptive_core())

#: Every built-in application, its natural core and compile kwargs.
BUILTIN_APPS = {
    "audio": lambda: (audio_application(), audio_core(),
                      dict(budget=64, io_binding=audio_io_binding())),
    "fir": lambda: (fir_application([0.25, 0.5, 0.125, -0.0625, 0.3]),
                    fir_core(), {}),
    "lms": lambda: (lms_application(n_taps=2), adaptive_core(), {}),
    "channel": lambda: (channel_frontend_application(), fir_core(), {}),
    "stress": lambda: (stress_application(3), audio_core(), {}),
}

LEVELS = (0, 1, 2)
N_FRAMES = 8
N_LANES = 3


@functools.lru_cache(maxsize=None)
def builtin_compiled(name: str, level: int):
    """One cold compile per (application, level), shared by all engines."""
    dfg, core, kwargs = BUILTIN_APPS[name]()
    io_binding = kwargs.pop("io_binding", None)
    compiled = Toolchain(core, cache=None, opt=level, **kwargs).compile(
        dfg, io_binding=io_binding)
    return dfg, compiled


class TestBuiltinAppEngineMatrix:
    """Every built-in application × every -O level × every engine.

    The reference interpretation of the *source* graph is the single
    oracle: all (level, engine) pairs must be bit-identical to it, so
    agreement across optimizer levels and across the scalar, decoded
    and numpy engines follows transitively.
    """

    @pytest.mark.parametrize("engine", available_engines())
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("name", sorted(BUILTIN_APPS))
    def test_matches_reference(self, name, level, engine):
        dfg, compiled = builtin_compiled(name, level)
        lanes = [random_streams(dfg, n=N_FRAMES, seed=90 + lane)
                 for lane in range(N_LANES)]
        expected = [run_reference(dfg, lane, N_FRAMES) for lane in lanes]
        actual = run_batch(compiled.binary, lanes, N_FRAMES, engine=engine)
        assert actual == expected


class TestDifferentialProperties:
    @given(random_application(allow_states=True, allow_mult=True),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=15, deadline=None)
    def test_frame_count_invariance(self, dfg, n_frames):
        # Prefixes agree: running N frames equals the first N of N+2.
        compiled = roundtrip(dfg, fir_core(), n_frames=n_frames + 2)
        if compiled is None:
            return
        import random

        rng = random.Random(1)
        stimulus = {
            port: [rng.randint(Q15.min_value, Q15.max_value)
                   for _ in range(n_frames + 2)]
            for port in dfg.inputs
        }
        full = compiled.run(stimulus, n_frames + 2)
        prefix = compiled.run(stimulus, n_frames)
        for port in full:
            assert full[port][:n_frames] == prefix[port]
