"""Tests for conflict graphs, clique covers and artificial resources
(paper, section 6.3 and figure 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import audio_core
from repro.core import (
    ClassTable,
    ConflictGraph,
    InstructionSet,
    clique_resource_name,
    edge_per_clique_cover,
    exact_cover,
    greedy_cover,
    impose_instruction_set,
    verify_cover,
)
from repro.errors import InstructionSetError
from repro.lang import parse_source
from repro.rtgen import conflict_same_cycle, generate_rts

CLASSES = ["S", "T", "U", "V", "X", "Y"]
DESIRED = [frozenset("ST"), frozenset("SUV"), frozenset("XY")]

#: Figure 6: the ten conflict edges of instruction set I.
FIG6_EDGES = {
    frozenset(e) for e in
    ("SX", "SY", "TU", "TV", "TX", "TY", "UX", "UY", "VX", "VY")
}

#: The paper's example cover of section 6.3.
PAPER_COVER = [
    frozenset("SX"), frozenset("SY"), frozenset("TUY"),
    frozenset("TVX"), frozenset("UX"), frozenset("VY"),
]


def example_graph():
    iset = InstructionSet.from_desired(CLASSES, DESIRED)
    return ConflictGraph.from_instruction_set(iset)


class TestConflictGraph:
    def test_figure6_edges_exactly(self):
        assert example_graph().edges == FIG6_EDGES

    def test_compatible_classes_have_no_edge(self):
        graph = example_graph()
        for pair in ("SU", "SV", "UV", "ST", "XY"):
            assert not graph.has_edge(*pair)

    def test_is_clique(self):
        graph = example_graph()
        assert graph.is_clique({"T", "U", "Y"})
        assert graph.is_clique({"T", "V", "X"})
        assert not graph.is_clique({"S", "U"})     # compatible pair
        assert graph.is_clique({"S"})              # trivially

    def test_degree(self):
        graph = example_graph()
        assert graph.degree("T") == 4   # TU TV TX TY
        assert graph.degree("S") == 2   # SX SY

    def test_pretty_lists_edges(self):
        text = example_graph().pretty()
        assert "10 conflict edges" in text
        assert "S -- X" in text


class TestCliqueCovers:
    def test_paper_cover_is_valid(self):
        verify_cover(example_graph(), PAPER_COVER)

    def test_paper_cover_partitions_edges(self):
        # The paper's cover covers each of the 10 edges exactly once.
        graph = example_graph()
        total = sum(len(graph.subgraph_edges(set(c))) for c in PAPER_COVER)
        assert total == len(graph.edges) == 10

    def test_greedy_cover_valid_and_small(self):
        graph = example_graph()
        cover = greedy_cover(graph)
        verify_cover(graph, cover)
        assert len(cover) <= 6   # paper's cover size

    def test_exact_cover_minimal(self):
        graph = example_graph()
        exact = exact_cover(graph)
        verify_cover(graph, exact)
        assert len(exact) <= len(greedy_cover(graph))

    def test_edge_per_clique_cover(self):
        graph = example_graph()
        cover = edge_per_clique_cover(graph)
        verify_cover(graph, cover)
        assert len(cover) == 10

    def test_verify_rejects_non_clique(self):
        with pytest.raises(InstructionSetError, match="not a clique"):
            verify_cover(example_graph(), [frozenset("SU")])

    def test_verify_rejects_uncovered(self):
        with pytest.raises(InstructionSetError, match="not covered"):
            verify_cover(example_graph(), [frozenset("SX")])

    def test_clique_resource_name(self):
        assert clique_resource_name(frozenset("CAB")) == "iset:ABC"


class TestArtificialResources:
    def audio_model(self, **kwargs):
        source = """
        app io;
        input i0;
        output o0, o1;
        loop {
          a := pass_clip(i0);
          o0 = a;
          o1 = a;
        }
        """
        core = audio_core()
        program = generate_rts(parse_source(source), core)
        table = ClassTable.from_core(core)
        iset = InstructionSet.from_desired(table.names, core.instruction_types)
        return impose_instruction_set(program.rts, table, iset, **kwargs)

    def test_audio_core_single_abc_clique(self):
        # Section 7: "A single artificial resource 'ABC' is required."
        model = self.audio_model()
        assert model.cover == [frozenset("ABC")]
        assert set(model.artificial_resources) == {"iset:ABC"}

    def test_io_rts_carry_the_clique_resource(self):
        model = self.audio_model()
        for rt in model.rts:
            uses = {u.resource: u.usage for u in rt.uses}
            if rt.opu in ("ipb", "opb_1", "opb_2"):
                assert uses["iset:ABC"] == rt.rt_class
            else:
                assert "iset:ABC" not in uses

    def test_io_rts_pairwise_conflict(self):
        model = self.audio_model()
        io_rts = [rt for rt in model.rts if rt.opu in ("ipb", "opb_1", "opb_2")]
        assert len(io_rts) == 3
        for i, a in enumerate(io_rts):
            for b in io_rts[i + 1:]:
                assert conflict_same_cycle(a, b)

    def test_non_io_rts_unaffected(self):
        model = self.audio_model()
        alu_rts = [rt for rt in model.rts if rt.opu == "alu"]
        io_rts = [rt for rt in model.rts if rt.opu == "ipb"]
        assert alu_rts and io_rts
        assert not conflict_same_cycle(alu_rts[0], io_rts[0])

    def test_explicit_cover_is_verified(self):
        with pytest.raises(InstructionSetError):
            self.audio_model(cover=[frozenset("AB")])  # BC, AC uncovered

    def test_edge_cover_algorithm(self):
        model = self.audio_model(cover_algorithm="edge")
        assert len(model.cover) == 3  # AB, AC, BC separately

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown cover algorithm"):
            self.audio_model(cover_algorithm="magic")


class TestSection63Example:
    """The worked RT_1/RT_2/RT_3 example of section 6.3."""

    def test_s_and_x_never_together(self):
        from repro.rtgen import RT, ResourceUse

        cover = PAPER_COVER
        # Build three bare RTs of classes S, U and X with no physical
        # resource overlap at all.
        def bare(opu, cls):
            rt = RT(opu=opu, operation="op", operands=(), destinations=(),
                    uses=(ResourceUse(opu, "op"),))
            rt.rt_class = cls
            return rt

        rt1, rt2, rt3 = bare("opu_s", "S"), bare("opu_u", "U"), bare("opu_x", "X")
        membership = {
            cls: [clique_resource_name(c) for c in cover if cls in c]
            for cls in CLASSES
        }
        def imposed(rt):
            from repro.rtgen import ResourceUse as RU
            return rt.with_extra_uses(tuple(
                RU(r, rt.rt_class) for r in sorted(membership[rt.rt_class])
            ))

        rt1m, rt2m, rt3m = imposed(rt1), imposed(rt2), imposed(rt3)
        # "It is clear that RT_1 and RT_3 will never be scheduled in the
        # same instruction as SX = S and SX = X form a conflict."
        assert conflict_same_cycle(rt1m, rt3m)
        assert conflict_same_cycle(rt2m, rt3m)      # UX = U vs UX = X
        assert not conflict_same_cycle(rt1m, rt2m)  # S and U are compatible


class TestCoverProperties:
    @st.composite
    @staticmethod
    def random_graph(draw):
        from itertools import combinations

        n = draw(st.integers(min_value=2, max_value=8))
        nodes = [chr(ord("A") + i) for i in range(n)]
        all_pairs = [frozenset(p) for p in combinations(nodes, 2)]
        edges = set(draw(st.sets(st.sampled_from(all_pairs))))
        return ConflictGraph(nodes, edges)

    @given(random_graph())
    @settings(max_examples=60, deadline=None)
    def test_greedy_cover_always_valid(self, graph):
        verify_cover(graph, greedy_cover(graph))

    @given(random_graph())
    @settings(max_examples=30, deadline=None)
    def test_exact_no_larger_than_greedy(self, graph):
        exact = exact_cover(graph)
        verify_cover(graph, exact)
        assert len(exact) <= len(greedy_cover(graph))
