"""Unit and property tests for the shared fixed-point arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixed import Q15, FixedFormat

q15_values = st.integers(min_value=Q15.min_value, max_value=Q15.max_value)


class TestFormat:
    def test_q15_range(self):
        assert Q15.min_value == -32768
        assert Q15.max_value == 32767
        assert Q15.scale == 32768

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            FixedFormat(width=1)

    def test_invalid_frac_bits(self):
        with pytest.raises(ValueError):
            FixedFormat(width=16, frac_bits=16)

    def test_from_float_quantises(self):
        assert Q15.from_float(0.5) == 16384
        assert Q15.from_float(-1.0) == -32768
        assert Q15.from_float(0.0) == 0

    def test_from_float_saturates(self):
        assert Q15.from_float(1.0) == 32767
        assert Q15.from_float(2.5) == 32767
        assert Q15.from_float(-3.0) == -32768

    def test_roundtrip_error_below_one_lsb(self):
        for x in (0.1, -0.37, 0.9999, -0.5):
            assert abs(Q15.to_float(Q15.from_float(x)) - x) <= 1 / Q15.scale


class TestArithmetic:
    def test_add_wraps(self):
        assert Q15.add(32767, 1) == -32768

    def test_add_clip_saturates(self):
        assert Q15.add_clip(32767, 1) == 32767
        assert Q15.add_clip(-32768, -1) == -32768

    def test_add_clip_passes_in_range(self):
        assert Q15.add_clip(1000, -2500) == -1500

    def test_sub_wraps(self):
        assert Q15.sub(-32768, 1) == 32767

    def test_mult_half_times_half(self):
        half = Q15.from_float(0.5)
        assert Q15.mult(half, half) == Q15.from_float(0.25)

    def test_mult_minus_one_squared_wraps(self):
        # -1.0 * -1.0 = +1.0 is unrepresentable; hardware wraps to -1.0.
        assert Q15.mult(-32768, -32768) == -32768

    def test_pass_clip_is_identity_in_range(self):
        assert Q15.pass_clip(1234) == 1234

    def test_apply_dispatch(self):
        assert Q15.apply("add", 3, 4) == 7
        assert Q15.apply("mult", 16384, 16384) == 8192
        assert Q15.apply("pass", -5) == -5

    def test_apply_unknown_operation(self):
        with pytest.raises(ValueError, match="no fixed-point semantics"):
            Q15.apply("frobnicate", 1)


class TestProperties:
    @given(q15_values, q15_values)
    def test_add_matches_two_complement(self, a, b):
        assert Q15.add(a, b) == Q15.wrap(a + b)

    @given(q15_values, q15_values)
    def test_add_clip_bounded(self, a, b):
        result = Q15.add_clip(a, b)
        assert Q15.min_value <= result <= Q15.max_value
        # Saturation is exact when the true sum is representable.
        if Q15.min_value <= a + b <= Q15.max_value:
            assert result == a + b

    @given(q15_values, q15_values)
    def test_mult_commutative(self, a, b):
        assert Q15.mult(a, b) == Q15.mult(b, a)

    @given(q15_values)
    def test_mult_by_one_is_near_identity(self, a):
        # 0x7FFF is just below 1.0: |a * 0.99997 - a| <= 1 LSB + scaling
        result = Q15.mult(a, Q15.max_value)
        assert abs(result - a) <= (abs(a) >> 14) + 1

    @given(q15_values)
    def test_wrap_fixpoint(self, a):
        assert Q15.wrap(a) == a

    @given(st.integers(min_value=-10**9, max_value=10**9))
    def test_wrap_idempotent(self, a):
        assert Q15.wrap(Q15.wrap(a)) == Q15.wrap(a)

    @given(st.integers(min_value=-10**9, max_value=10**9))
    def test_clip_idempotent(self, a):
        assert Q15.clip(Q15.clip(a)) == Q15.clip(a)
