"""Shared fixtures for the test suite.

The plain-function stimulus helper lives in ``stream_helpers.py`` (see
its docstring for why it is not defined here); the fixtures below wrap
it for test bodies that prefer injection.
"""

from __future__ import annotations

import random

import pytest

from repro.arch import register_core, unregister_core
from stream_helpers import random_streams


@pytest.fixture(autouse=True)
def hermetic_disk_cache(tmp_path, monkeypatch):
    """Point the default persistent stage cache at a per-test directory.

    CLI commands keep a disk cache under ``~/.cache/repro`` by default;
    tests must neither read a developer's warm cache (hiding cold-path
    bugs) nor litter it.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def rng():
    """A deterministically seeded PRNG, fresh per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def make_streams():
    """Factory fixture over :func:`random_streams` for test bodies."""
    return random_streams


@pytest.fixture
def registered_core():
    """Factory registering cores for one test, unregistered afterwards.

    ::

        def test_x(registered_core):
            registered_core("my-core", tiny_core)
            Toolchain("my-core", cache=None).compile(src)
    """
    registered: list[str] = []

    def register(name, factory, replace=False):
        register_core(name, factory, replace=replace)
        registered.append(name)
        return name

    yield register
    for name in reversed(registered):
        try:
            unregister_core(name)
        except Exception:
            pass
