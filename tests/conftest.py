"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def hermetic_disk_cache(tmp_path, monkeypatch):
    """Point the default persistent stage cache at a per-test directory.

    CLI commands keep a disk cache under ``~/.cache/repro`` by default;
    tests must neither read a developer's warm cache (hiding cold-path
    bugs) nor litter it.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
