"""Error-path audit for :func:`repro.arch.simulate_points`.

The happy path is covered by the explore tests; this module pins the
contract on the ways a candidate can fail: infeasible exploration
points (carried failures), per-point compile errors, and mid-batch
simulation errors that must degrade to a one-at-a-time fallback rather
than sink the whole sweep.
"""

from __future__ import annotations

import importlib

import pytest

from repro import CompileOptions, run_reference, simulate_points
from repro.arch import Allocation, ExplorationPoint, explore
from repro.errors import ReproError
from repro.lang import parse_source
from repro.sim import PlanError
from repro.sim import batch as batch_module
from stream_helpers import random_streams

# The package re-exports the explore *function* under the same name as
# its defining module; reach the module itself for monkeypatching.
explore_module = importlib.import_module("repro.arch.explore")

GAIN = """
app gain;
param g = 0.5;
input i; output o;
loop { o = mlt(g, i); }
"""

OPTIONS = CompileOptions(disk_cache=False)


@pytest.fixture(scope="module")
def gain_dfg():
    return parse_source(GAIN)


@pytest.fixture(scope="module")
def gain_points(gain_dfg):
    points = explore([gain_dfg], [Allocation(), Allocation(n_alu=2)],
                     options=OPTIONS)
    assert all(point.feasible for point in points)
    return points


def lanes_for(dfg, n_lanes=3, n_frames=5):
    return [random_streams(dfg, n=n_frames, seed=70 + lane)
            for lane in range(n_lanes)]


class TestHappyPaths:
    def test_list_stimuli_match_reference(self, gain_dfg, gain_points):
        lanes = lanes_for(gain_dfg)
        results = simulate_points(gain_dfg, gain_points, lanes,
                                  options=OPTIONS, n_frames=5)
        assert [r.ok for r in results] == [True, True]
        expected = [run_reference(gain_dfg, lane, 5) for lane in lanes]
        for result in results:
            assert result.outputs == expected

    def test_dict_stimulus_equals_single_lane_list(self, gain_dfg,
                                                   gain_points):
        shared = random_streams(gain_dfg, n=5, seed=3)
        via_dict = simulate_points(gain_dfg, gain_points, shared,
                                   options=OPTIONS, n_frames=5)
        via_list = simulate_points(gain_dfg, gain_points, [shared],
                                   options=OPTIONS, n_frames=5)
        assert [r.outputs for r in via_dict] == [r.outputs for r in via_list]


class TestInfeasiblePoints:
    def test_carried_failures_short_circuit(self, gain_dfg, gain_points):
        bad = ExplorationPoint(
            allocation=Allocation(), schedule_lengths={}, n_opus=0,
            failures={"gain": "rf_alu_p0 overflows", "other": "no route"})
        results = simulate_points(gain_dfg, [bad],
                                  lanes_for(gain_dfg), options=OPTIONS)
        assert len(results) == 1
        assert not results[0].ok
        assert results[0].outputs == []
        # Deterministic, sorted, app-labelled summary of every failure.
        assert results[0].failure == \
            "gain: rf_alu_p0 overflows; other: no route"

    def test_mixed_feasible_and_infeasible_keep_order(self, gain_dfg,
                                                      gain_points):
        bad = ExplorationPoint(
            allocation=Allocation(), schedule_lengths={}, n_opus=0,
            failures={"gain": "infeasible"})
        results = simulate_points(
            gain_dfg, [gain_points[0], bad, gain_points[1]],
            lanes_for(gain_dfg), options=OPTIONS, n_frames=5)
        assert [r.ok for r in results] == [True, False, True]
        assert results[0].outputs == results[2].outputs


class TestCompileFailures:
    def test_one_bad_candidate_does_not_sink_the_rest(
            self, gain_dfg, gain_points, monkeypatch):
        real = explore_module.intermediate_architecture
        poison = gain_points[1].allocation

        def flaky(dfgs, allocation=None, **kwargs):
            if allocation == poison:
                raise ReproError("synthetic core-synthesis failure")
            return real(dfgs, allocation, **kwargs)

        monkeypatch.setattr(explore_module,
                            "intermediate_architecture", flaky)
        results = simulate_points(gain_dfg, gain_points,
                                  lanes_for(gain_dfg), options=OPTIONS,
                                  n_frames=5)
        assert results[0].ok
        assert not results[1].ok
        assert "synthetic core-synthesis failure" in results[1].failure
        assert results[1].outputs == []


class TestSimulationFallback:
    def test_plan_error_falls_back_per_candidate(self, gain_dfg,
                                                 gain_points, monkeypatch):
        # run_programs (the stacked dict-stimulus path) dies wholesale;
        # the fallback must still produce every candidate's outputs via
        # run_batch one at a time.
        def explode(*args, **kwargs):
            raise PlanError("no shared structure")

        monkeypatch.setattr(batch_module, "run_programs", explode)
        shared = random_streams(gain_dfg, n=5, seed=9)
        results = simulate_points(gain_dfg, gain_points, shared,
                                  options=OPTIONS, n_frames=5)
        expected = [run_reference(gain_dfg, shared, 5)]
        assert [r.ok for r in results] == [True, True]
        for result in results:
            assert result.outputs == expected

    def test_mid_batch_error_retries_each_candidate(self, gain_dfg,
                                                    gain_points,
                                                    monkeypatch):
        real = batch_module.run_batch
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ReproError("transient mid-batch failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(batch_module, "run_batch", flaky)
        lanes = lanes_for(gain_dfg)
        results = simulate_points(gain_dfg, gain_points, lanes,
                                  options=OPTIONS, n_frames=5)
        expected = [run_reference(gain_dfg, lane, 5) for lane in lanes]
        assert [r.ok for r in results] == [True, True]
        for result in results:
            assert result.outputs == expected
        assert calls["n"] >= 3  # failed once, then per-candidate retries

    def test_persistent_error_is_recorded_not_raised(self, gain_dfg,
                                                     gain_points,
                                                     monkeypatch):
        def always(*args, **kwargs):
            raise ReproError("engine is on fire")

        monkeypatch.setattr(batch_module, "run_batch", always)
        results = simulate_points(gain_dfg, gain_points,
                                  lanes_for(gain_dfg), options=OPTIONS,
                                  n_frames=5)
        assert [r.ok for r in results] == [False, False]
        for result in results:
            assert "engine is on fire" in result.failure
