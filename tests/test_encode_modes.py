"""Tests for program modes (loop / once / repeat) and image round-trips."""

import pytest

from repro import Q15, Toolchain, fir_core, run_reference, tiny_core
from repro.arch import CtrlOp
from repro.encode import (
    CTRL_DECODE,
    dump_program,
    load_program,
    program_to_dict,
)
from repro.errors import EncodingError, OptionsError
from repro.lang import DfgBuilder, parse_source
from repro.sim import run_program

GAIN = """
app gain;
param g = 0.5;
input i; output o;
loop { o = mlt(g, i); }
"""

FIR2 = """
app fir2;
param h0 = 0.5, h1 = 0.25;
input x; output y;
state d(1);
loop {
  d = x;
  m0 := mlt(h0, x);
  m1 := mlt(h1, d@1);
  y = add_clip(m1, m0);
}
"""


def ctrl_ops_of(binary):
    return [
        CTRL_DECODE[binary.format.decode(word)["ctrl.op"]]
        for word in binary.words
    ]


class TestProgramModes:
    def test_loop_mode_structure(self):
        compiled = Toolchain(fir_core(), cache=None).compile(GAIN)
        ops = ctrl_ops_of(compiled.binary)
        assert ops[0] is CtrlOp.IDLE
        assert ops[-1] is CtrlOp.JUMP
        assert all(op is CtrlOp.CONT for op in ops[1:-1])

    def test_once_mode_halts(self):
        compiled = Toolchain(fir_core(), cache=None, mode="once").compile(GAIN)
        ops = ctrl_ops_of(compiled.binary)
        assert ops[-1] is CtrlOp.HALT
        outputs = compiled.run({"i": [Q15.from_float(0.5)]}, n_frames=1)
        assert outputs["o"] == [Q15.from_float(0.25)]

    def test_repeat_mode_structure(self):
        compiled = Toolchain(fir_core(), cache=None, mode="repeat", repeat=4) \
            .compile(FIR2)
        ops = ctrl_ops_of(compiled.binary)
        assert ops[0] is CtrlOp.IDLE
        assert ops[1] is CtrlOp.LOOP
        assert ops[-2] is CtrlOp.ENDL
        assert ops[-1] is CtrlOp.JUMP

    def test_repeat_mode_processes_blocks(self):
        # One start signal processes `repeat_count` samples; results
        # must equal the plain time-loop program's sample for sample.
        dfg = parse_source(FIR2)
        block = Toolchain(fir_core(), cache=None, mode="repeat", repeat=4) \
            .compile(dfg)
        xs = [Q15.from_float(v) for v in
              (0.5, -0.25, 0.125, 0.75, -0.5, 0.25, 0.0, 0.9)]
        expected = run_reference(dfg, {"x": xs})
        outputs = block.run({"x": xs})   # 8 samples = 2 start signals
        assert outputs == expected

    def test_repeat_count_must_be_positive(self):
        # Validation moved forward: CompileOptions rejects the value
        # before any stage runs (it used to surface at encoding time).
        with pytest.raises(OptionsError, match="repeat must be >= 1"):
            Toolchain(fir_core(), cache=None, mode="repeat", repeat=0) \
                .compile(FIR2)

    def test_repeat_needs_loop_controller(self):
        core = fir_core()
        core.controller.supports_loops = False
        with pytest.raises(EncodingError, match="loop stack"):
            Toolchain(core, cache=None, mode="repeat", repeat=2).compile(FIR2)

    def test_unknown_mode_rejected(self):
        with pytest.raises(OptionsError, match="mode must be one of"):
            Toolchain(fir_core(), cache=None, mode="bogus").compile(GAIN)

    def test_program_too_large_rejected(self):
        core = tiny_core()
        core.controller.program_size = 2
        b = DfgBuilder("big")
        i = b.input("i")
        x = b.op("pass", i)
        for _ in range(8):
            x = b.op("pass", x)
        b.output("o", x)
        with pytest.raises(EncodingError, match="program needs"):
            Toolchain(core, cache=None).compile(b.build())


class TestMicrocodeImage:
    def test_roundtrip_preserves_everything(self):
        compiled = Toolchain(fir_core(), cache=None, mode="repeat", repeat=2) \
            .compile(FIR2)
        loaded = load_program(dump_program(compiled.binary))
        assert loaded.words == compiled.binary.words
        assert loaded.input_map == compiled.binary.input_map
        assert loaded.output_map == compiled.binary.output_map
        assert loaded.acu_moduli == compiled.binary.acu_moduli
        assert loaded.repeat_count == 2

    def test_loaded_image_runs_identically(self):
        compiled = Toolchain(fir_core(), cache=None).compile(FIR2)
        loaded = load_program(dump_program(compiled.binary))
        xs = [Q15.from_float(v) for v in (0.9, -0.3, 0.2, 0.0)]
        assert run_program(loaded, {"x": xs}) == compiled.run({"x": xs})

    def test_version_check(self):
        from repro.encode import program_from_dict

        compiled = Toolchain(fir_core(), cache=None).compile(GAIN)
        payload = program_to_dict(compiled.binary)
        payload["image_format_version"] = 42
        with pytest.raises(EncodingError, match="version"):
            program_from_dict(payload)

    def test_width_mismatch_detected(self):
        from repro.encode import program_from_dict

        compiled = Toolchain(fir_core(), cache=None).compile(GAIN)
        payload = program_to_dict(compiled.binary)
        payload["word_width"] = 1
        with pytest.raises(EncodingError, match="word width"):
            program_from_dict(payload)
