"""Tests for instruction-word layout and binary field packing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import audio_core, fir_core, tiny_core
from repro.encode import (
    CTRL_OPCODES,
    InstructionFormat,
    derive_format,
    opcode_table,
)
from repro.errors import EncodingError


class TestInstructionFormat:
    def test_fields_are_packed_consecutively(self):
        fmt = InstructionFormat([("a", 3), ("b", 5), ("c", 1)])
        assert fmt.width == 9
        assert fmt.field("a").offset == 0
        assert fmt.field("b").offset == 3
        assert fmt.field("c").offset == 8

    def test_encode_decode_roundtrip(self):
        fmt = InstructionFormat([("a", 3), ("b", 5), ("c", 1)])
        word = fmt.encode({"a": 5, "b": 17, "c": 1})
        assert fmt.decode(word) == {"a": 5, "b": 17, "c": 1}

    def test_unset_fields_decode_to_zero(self):
        fmt = InstructionFormat([("a", 3), ("b", 5)])
        assert fmt.decode(fmt.encode({"b": 9})) == {"a": 0, "b": 9}

    def test_value_too_wide_rejected(self):
        fmt = InstructionFormat([("a", 3)])
        with pytest.raises(EncodingError, match="does not fit"):
            fmt.encode({"a": 8})

    def test_unknown_field_rejected(self):
        fmt = InstructionFormat([("a", 3)])
        with pytest.raises(EncodingError, match="unknown instruction field"):
            fmt.encode({"zz": 1})

    def test_duplicate_field_rejected(self):
        with pytest.raises(EncodingError, match="duplicate"):
            InstructionFormat([("a", 3), ("a", 2)])

    def test_zero_width_rejected(self):
        with pytest.raises(EncodingError, match="width"):
            InstructionFormat([("a", 0)])

    def test_decode_rejects_oversized_word(self):
        fmt = InstructionFormat([("a", 3)])
        with pytest.raises(EncodingError, match="wider"):
            fmt.decode(1 << 3)

    @given(st.data())
    @settings(max_examples=60)
    def test_roundtrip_property(self, data):
        n_fields = data.draw(st.integers(min_value=1, max_value=8))
        widths = [data.draw(st.integers(min_value=1, max_value=12))
                  for _ in range(n_fields)]
        fmt = InstructionFormat([(f"f{i}", w) for i, w in enumerate(widths)])
        values = {
            f"f{i}": data.draw(st.integers(min_value=0, max_value=(1 << w) - 1))
            for i, w in enumerate(widths)
        }
        assert fmt.decode(fmt.encode(values)) == values


class TestDeriveFormat:
    def test_every_core_gets_ctrl_fields(self):
        for core in (audio_core(), fir_core(), tiny_core()):
            fmt = derive_format(core)
            assert "ctrl.op" in fmt
            assert "ctrl.arg" in fmt

    def test_audio_core_field_inventory(self):
        fmt = derive_format(audio_core())
        # One opcode field per OPU.
        for opu in ("ram", "mult", "alu", "rom", "acu", "prg_c",
                    "ipb", "opb_1", "opb_2"):
            assert f"{opu}.op" in fmt
        # Register-address fields for register-fed ports.
        assert "mult.p0.addr" in fmt
        assert "mult.p1.addr" in fmt
        assert "ram.p0.addr" in fmt
        # Immediate fields for the ACU offset and the program constant.
        assert "acu.p1.imm" in fmt
        assert "prg_c.p0.imm" in fmt
        assert fmt.field("prg_c.p0.imm").width == 16
        # Destination-side fields per register file.
        assert "rf_alu_p0.wr_en" in fmt
        assert "rf_alu_p0.wr_addr" in fmt
        assert "rf_alu_p0.mux" in fmt          # multiple writers
        assert "rf_rom_addr.mux" not in fmt    # single writer, no mux

    def test_acu_immediate_sized_by_ram(self):
        fmt = derive_format(audio_core(ram_size=128))
        assert fmt.field("acu.p1.imm").width == 7

    def test_opcodes_reserve_zero_for_nop(self):
        table = opcode_table(audio_core())
        for ops in table.values():
            assert 0 not in ops.values()
            assert len(set(ops.values())) == len(ops)

    def test_ctrl_opcodes_are_distinct(self):
        assert len(set(CTRL_OPCODES.values())) == len(CTRL_OPCODES)

    def test_conditional_core_gets_flag_field(self):
        from repro.arch import ControllerSpec, CoreSpec, tiny_datapath

        core = CoreSpec(
            name="cond",
            datapath=tiny_datapath(),
            controller=ControllerSpec(n_flags=2, supports_conditionals=True),
        )
        fmt = derive_format(core)
        assert "ctrl.flag" in fmt
