"""The deprecated pre-``Toolchain`` entry points: still working, still
bit-exact, and warning.

``compile_application``, ``CompileSession`` and ``BatchSession`` are
thin wrappers over :class:`repro.Toolchain`; this file is their
dedicated coverage — every use of a legacy entry point is wrapped in
``pytest.warns``, and the strict CI tier
(``-W error::DeprecationWarning``) excludes this file so the rest of
the suite proves the library itself never touches the deprecated
paths.
"""

import pytest

from repro import (
    Q15,
    BatchSession,
    CompileOptions,
    CompileSession,
    StageCache,
    Toolchain,
    audio_core,
    compile_application,
)
from repro.errors import OptionsError
from repro.pipeline import DiskCache

SOURCE = """
app opts;
param k = 0.5;
input i; output o;
state s(1);
loop {
  s = i;
  m := mlt(k, s@1);
  o = add_clip(m, i);
}
"""


def stimulus():
    return {"i": [Q15.from_float(v) for v in (0.5, -0.25, 0.125, 0.0, 0.9)]}


class TestCompileApplication:
    def test_warns_and_matches_the_facade(self):
        with pytest.warns(DeprecationWarning, match="compile_application"):
            legacy = compile_application(SOURCE, audio_core(), budget=64,
                                         opt_level=2)
        facade = Toolchain(audio_core(), CompileOptions(budget=64, opt=2),
                           cache=None).compile(SOURCE)
        assert legacy.binary.words == facade.binary.words
        assert legacy.binary.rom_words == facade.binary.rom_words
        assert legacy.run(stimulus()) == facade.run(stimulus())

    def test_accepts_core_names(self):
        with pytest.warns(DeprecationWarning):
            legacy = compile_application(SOURCE, "audio", budget=64)
        assert legacy.schedule.budget == 64

    def test_legacy_kwargs_are_validated(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(OptionsError, match="budget must be >= 1"):
                compile_application(SOURCE, audio_core(), budget=0)


class TestCompileSession:
    def test_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="CompileSession"):
            CompileSession()

    def test_run_compile_and_cache_semantics_preserved(self):
        with pytest.warns(DeprecationWarning):
            session = CompileSession()
        first = session.compile(SOURCE, audio_core(), budget=64)
        second = session.compile(SOURCE, audio_core(), budget=64)
        assert session.cache.stats.hits == 8
        assert first.binary.words == second.binary.words

    def test_legacy_kwargs_funnel_through_options(self):
        with pytest.warns(DeprecationWarning):
            session = CompileSession(cache=None)
        legacy = session.compile(SOURCE, audio_core(), budget=64,
                                 cover_algorithm="exact", opt_level=2,
                                 repeat_count=1)
        facade = Toolchain(audio_core(), cache=None, budget=64,
                           cover="exact", opt=2).compile(SOURCE)
        assert legacy.binary.words == facade.binary.words

    def test_mixing_options_and_legacy_kwargs_is_refused(self):
        # Silently preferring one spelling would compile the wrong
        # request; the conflict must be loud.
        with pytest.warns(DeprecationWarning):
            session = CompileSession(cache=None)
        with pytest.raises(OptionsError, match="not both"):
            session.run(SOURCE, audio_core(), budget=4,
                        options=CompileOptions(budget=64))
        with pytest.raises(OptionsError, match="not both"):
            session.run(SOURCE, audio_core(), opt_level=2, seed=7,
                        options=CompileOptions())

    def test_options_keyword_is_accepted(self):
        with pytest.warns(DeprecationWarning):
            session = CompileSession(cache=None)
        state = session.run(SOURCE, audio_core(),
                            options=CompileOptions(budget=64,
                                                   stop_after="schedule"))
        assert not state.is_complete
        assert state.schedule.length <= 64

    def test_unknown_stop_stage_still_a_value_error(self):
        with pytest.warns(DeprecationWarning):
            session = CompileSession()
        with pytest.raises(ValueError, match="unknown stage"):
            session.run(SOURCE, audio_core(), stop_after="codegen")


class TestBatchSession:
    def test_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="BatchSession"):
            BatchSession()

    def test_compile_many_matches_the_facade(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            batch = BatchSession(disk=DiskCache(tmp_path))
        result = batch.compile_many([SOURCE, SOURCE], audio_core(),
                                    budget=64)
        assert result.ok
        assert all(result.entries[1].state.cache_hits.values())
        facade = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        assert result.entries[0].state.binary.words == facade.binary.words

    def test_prebuilt_cache_and_disk_are_exclusive(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                BatchSession(cache=StageCache(), disk=DiskCache(tmp_path))

    def test_io_binding_and_merges_still_supported(self):
        # The pre-Toolchain wrapper always accepted these; they are
        # per-application wiring, not CompileOptions fields.
        from repro.apps import audio_application, audio_io_binding

        with pytest.warns(DeprecationWarning):
            batch = BatchSession(cache=None)
        result = batch.compile_many([audio_application()], audio_core(),
                                    budget=64,
                                    io_binding=audio_io_binding())
        assert result.ok

    def test_stop_after_still_supported(self):
        with pytest.warns(DeprecationWarning):
            batch = BatchSession()
        result = batch.compile_many([SOURCE], audio_core(),
                                    stop_after="schedule")
        state = result.entries[0].state
        assert not state.is_complete
        assert state.schedule.length >= 1
