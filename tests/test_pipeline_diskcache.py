"""Tests for the persistent stage cache and batched compiles.

The load-bearing guarantees: a second process restores every stage from
disk (zero stage-body executions, bit-identical binary), a bad entry is
a miss and never a crash, version skew invalidates instead of
deserializing nonsense, concurrent writers on one directory are safe,
and the store honors its size bound.
"""

from __future__ import annotations

import concurrent.futures

import pytest

from repro import Q15, Toolchain, audio_core, run_reference
from repro.pipeline import (
    ARTIFACT_VERSIONS,
    STAGE_EXECUTIONS,
    STAGE_NAMES,
    DiskCache,
    StageCache,
)
from repro.pipeline import diskcache
from repro.pipeline.diskcache import deserialize, serialize

SOURCE = """
app opts;
param k = 0.5;
input i; output o;
state s(1);
loop {
  s = i;
  m := mlt(k, s@1);
  o = add_clip(m, i);
}
"""

VARIANT = SOURCE.replace("0.5", "0.25")


def stimulus():
    return {"i": [Q15.from_float(v) for v in (0.5, -0.25, 0.125, 0.0, 0.9)]}


def toolchain_on(cache_dir, core=None, disk_options=None, **options) -> Toolchain:
    """A fresh toolchain over ``cache_dir`` — an empty memory tier plus
    the shared store, which is exactly what a new process starts with."""
    disk = DiskCache(cache_dir, **(disk_options or {}))
    return Toolchain(core if core is not None else audio_core(),
                     cache=StageCache(disk=disk), **options)


class TestEnvelope:
    def test_roundtrip(self):
        obj = {"dfg": [1, 2, 3], "binary": ("words", 42)}
        schema = {"dfg": 1, "binary": 1}
        assert deserialize(serialize(obj, schema), schema) == obj

    def test_schema_subset_is_compatible(self):
        # An entry holding a prefix of the artifacts (a partial compile)
        # must deserialize under the full expected table.
        blob = serialize({"source_dfg": "x"}, {"source_dfg": 1})
        assert deserialize(blob, ARTIFACT_VERSIONS) == {"source_dfg": "x"}

    def test_schema_skew_rejected(self):
        blob = serialize({"dfg": "x"}, {"dfg": 1})
        with pytest.raises(diskcache.CacheVersionError):
            deserialize(blob, {"dfg": 2})

    def test_corruption_rejected(self):
        blob = serialize({"x": 1})
        flipped = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        with pytest.raises(diskcache.CacheEntryError):
            deserialize(flipped)
        with pytest.raises(diskcache.CacheEntryError):
            deserialize(b"not an entry at all")
        with pytest.raises(diskcache.CacheEntryError):
            deserialize(blob[: len(blob) // 2])

    def test_non_object_header_rejected(self):
        # Valid JSON but not an object: still corruption, never a crash.
        header = b"[1, 2]"
        blob = diskcache._MAGIC + len(header).to_bytes(4, "little") + header
        with pytest.raises(diskcache.CacheEntryError):
            deserialize(blob)

    def test_non_object_schema_rejected(self):
        import json as json_module

        header = json_module.dumps({
            "format": diskcache.FORMAT_VERSION,
            "pipeline": diskcache.PIPELINE_VERSION,
            "schema": [1, 2],
            "payload_sha256": "0" * 64,
        }).encode()
        blob = diskcache._MAGIC + len(header).to_bytes(4, "little") + header
        with pytest.raises(diskcache.CacheEntryError):
            deserialize(blob)


class TestSecondProcess:
    """The acceptance criterion: warm cross-process compiles do no
    stage work and reproduce the binary bit for bit."""

    def test_zero_stage_executions_and_bit_identical_binary(self, tmp_path):
        first = toolchain_on(tmp_path, budget=64).compile(SOURCE)

        before = dict(STAGE_EXECUTIONS)
        state = toolchain_on(tmp_path, budget=64).run_pipeline(SOURCE)
        executed = {
            name: STAGE_EXECUTIONS[name] - before.get(name, 0)
            for name in STAGE_NAMES
        }
        assert executed == {name: 0 for name in STAGE_NAMES}
        assert all(state.cache_hits[name] for name in STAGE_NAMES)
        assert all(state.cache_sources[name] == "disk"
                   for name in STAGE_NAMES)

        second = state.as_compiled()
        assert second.binary.words == first.binary.words
        assert second.binary.rom_words == first.binary.rom_words
        assert second.run(stimulus()) == run_reference(second.dfg, stimulus())

    def test_different_request_still_executes(self, tmp_path):
        toolchain_on(tmp_path, budget=64).compile(SOURCE)
        state = toolchain_on(tmp_path, budget=64).run_pipeline(VARIANT)
        assert not any(state.cache_hits.values())

    def test_partial_compile_resumes_across_processes(self, tmp_path):
        toolchain_on(tmp_path, budget=64,
                     stop_after="schedule").run_pipeline(SOURCE)
        state = toolchain_on(tmp_path, budget=64).run_pipeline(SOURCE)
        assert all(state.cache_sources[name] == "disk"
                   for name in STAGE_NAMES[:6])
        assert not state.cache_hits["regalloc"]

    def test_memory_tier_hydrated_from_disk(self, tmp_path):
        toolchain_on(tmp_path, budget=64).compile(SOURCE)
        toolchain = toolchain_on(tmp_path, budget=64)
        toolchain.compile(SOURCE)
        state = toolchain.run_pipeline(SOURCE)
        # Second compile with the same toolchain: served from memory,
        # not re-read from disk.
        assert all(src == "memory" for src in state.cache_sources.values())
        assert toolchain.cache.stats.disk_hits == len(STAGE_NAMES)


class TestCorruptionTolerance:
    def test_corrupted_entry_is_a_miss(self, tmp_path):
        toolchain_on(tmp_path, budget=64).compile(SOURCE)
        disk = DiskCache(tmp_path)
        for path in sorted(disk.objects.glob("*/*.rpdc")):
            path.write_bytes(b"garbage" * 100)
        state = toolchain_on(tmp_path, budget=64).run_pipeline(SOURCE)
        assert not any(state.cache_hits.values())
        assert state.as_compiled().binary.words

    def test_corrupt_entries_are_dropped_and_counted(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put("ab" * 32, {"x": 1})
        path = disk.path_for("ab" * 32)
        path.write_bytes(b"\x00\x01\x02")
        assert disk.get("ab" * 32) is None
        assert disk.stats.corrupt == 1
        assert not path.exists()
        # The dropped entry cannot fail twice: now a plain miss.
        assert disk.get("ab" * 32) is None
        assert disk.stats.corrupt == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put("cd" * 32, {"x": list(range(1000))})
        path = disk.path_for("cd" * 32)
        path.write_bytes(path.read_bytes()[:-20])
        assert disk.get("cd" * 32) is None
        assert disk.stats.corrupt == 1


class TestUnwritableStore:
    def test_unwritable_directory_degrades_to_uncached(self, tmp_path):
        """A broken cache must not break the compiler: writes are
        counted and dropped, the compile succeeds cold.

        The cache root sits below a regular *file*, so every mkdir
        fails with NotADirectoryError — unlike permission bits, that
        holds even when the suite runs as root.
        """
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        disk = DiskCache(blocker / "cache")
        toolchain = Toolchain(audio_core(), cache=StageCache(disk=disk),
                              budget=64)
        compiled = toolchain.compile(SOURCE)
        assert compiled.run(stimulus()) == \
            run_reference(compiled.dfg, stimulus())
        assert disk.stats.write_errors == len(STAGE_NAMES)
        assert disk.stats.stores == 0

    def test_unpicklable_object_degrades_too(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put("ee" * 32, {"bad": lambda: None})
        assert disk.stats.write_errors == 1
        assert disk.stats.stores == 0
        assert disk.get("ee" * 32) is None


class TestVersioning:
    def test_pipeline_version_skew_invalidates(self, tmp_path, monkeypatch):
        toolchain_on(tmp_path, budget=64).compile(SOURCE)
        monkeypatch.setattr(diskcache, "PIPELINE_VERSION", 999)
        disk = DiskCache(tmp_path)
        state = Toolchain(audio_core(), cache=StageCache(disk=disk),
                          budget=64).run_pipeline(SOURCE)
        assert not any(state.cache_hits.values())
        assert disk.stats.version_skips > 0

    def test_artifact_version_skew_invalidates(self, tmp_path, monkeypatch):
        toolchain_on(tmp_path, budget=64).compile(SOURCE)
        bumped = dict(ARTIFACT_VERSIONS, schedule=ARTIFACT_VERSIONS["schedule"] + 1)
        monkeypatch.setattr("repro.pipeline.artifacts.ARTIFACT_VERSIONS",
                            bumped)
        disk = DiskCache(tmp_path)
        state = Toolchain(audio_core(), cache=StageCache(disk=disk),
                          budget=64).run_pipeline(SOURCE)
        # Entries containing a schedule are skew; the pure prefix
        # (parse/optimize/rtgen/merge/impose) still serves.
        assert state.cache_hits["parse"]
        assert state.cache_hits["impose"]
        assert not state.cache_hits["schedule"]
        assert not state.cache_hits["assemble"]
        assert disk.stats.version_skips > 0

    def test_format_version_skew_invalidates(self, tmp_path, monkeypatch):
        disk = DiskCache(tmp_path)
        disk.put("ef" * 32, {"x": 1})
        monkeypatch.setattr(diskcache, "FORMAT_VERSION", 999)
        fresh = DiskCache(tmp_path)
        assert fresh.get("ef" * 32) is None
        assert fresh.stats.version_skips == 1


class TestConcurrency:
    def test_two_sessions_one_directory(self, tmp_path):
        """Two 'processes' compiling the same sources into one cache
        directory concurrently: no crashes, correct results for both."""
        def compile_one(source):
            compiled = toolchain_on(tmp_path, budget=64).compile(source)
            return (compiled.binary.words, compiled.binary.rom_words)

        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            words = list(pool.map(compile_one,
                                  [SOURCE, VARIANT, SOURCE, VARIANT] * 2))
        assert words[0] == words[2] == words[4] == words[6]
        assert words[1] == words[3] == words[5] == words[7]
        assert words[0] != words[1]

    def test_racing_writers_same_key(self, tmp_path):
        disk = DiskCache(tmp_path)
        key = "aa" * 32

        def hammer(value):
            for _ in range(25):
                disk.put(key, {"payload": value})
                got = disk.get(key)
                # Last write wins; any complete entry is acceptable.
                assert got is None or got["payload"] in (0, 1)

        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            list(pool.map(hammer, [0, 1]))
        assert disk.stats.corrupt == 0


class TestEviction:
    def test_size_bound_evicts_lru(self, tmp_path):
        one_entry = len(serialize({"payload": "x" * 1000}, {}))
        disk = DiskCache(tmp_path, max_bytes=3 * one_entry)
        for index in range(8):
            disk.put(f"{index:02d}" + "0" * 62, {"payload": "x" * 1000})
        assert disk.stats.evictions >= 5
        assert disk.size_bytes() <= 3 * one_entry
        # The newest entry survived; the oldest did not.
        assert disk.get("07" + "0" * 62) is not None
        assert disk.get("00" + "0" * 62) is None

    def test_tiny_bound_still_correct(self, tmp_path):
        """A cache too small to hold one compile's snapshots still
        compiles correctly — it just cannot help later."""
        toolchain = toolchain_on(tmp_path, disk_options={"max_bytes": 1},
                                 budget=64)
        compiled = toolchain.compile(SOURCE)
        assert compiled.run(stimulus()) == \
            run_reference(compiled.dfg, stimulus())

    def test_same_key_restores_do_not_inflate_the_estimate(self, tmp_path):
        """Re-storing the same keys replaces bytes on disk; the running
        size estimate must track the delta, not the sum — otherwise a
        designer's iterative re-sweeps trigger needless full-scan
        eviction passes (and eventually evict live entries)."""
        one_entry = len(serialize({"payload": "x" * 1000}, {}))
        disk = DiskCache(tmp_path, max_bytes=4 * one_entry)
        scans = 0
        real_evict = disk._evict

        def counting_evict():
            nonlocal scans
            scans += 1
            real_evict()

        disk._evict = counting_evict
        keys = [f"{index:02d}" + "0" * 62 for index in range(3)]
        for _ in range(25):
            for key in keys:
                disk.put(key, {"payload": "x" * 1000})
        # 75 stores of 3 distinct keys fit the bound with room to
        # spare: no eviction scan may fire and nothing may be evicted.
        assert scans == 0
        assert disk.stats.evictions == 0
        assert disk._size_estimate == disk.size_bytes()
        assert all(disk.get(key) is not None for key in keys)

    def test_overwrite_with_larger_entry_tracks_growth(self, tmp_path):
        """The delta accounting still notices entries that grow."""
        disk = DiskCache(tmp_path, max_bytes=1 << 20)
        key = "aa" + "0" * 62
        disk.put(key, {"payload": "x"})
        small = disk._size_estimate
        disk.put(key, {"payload": "x" * 5000})
        assert disk._size_estimate > small
        assert disk._size_estimate == disk.size_bytes()

    def test_reads_refresh_recency(self, tmp_path):
        one_entry = len(serialize({"payload": "x" * 1000}, {}))
        disk = DiskCache(tmp_path, max_bytes=2 * one_entry + 8)
        import os
        import time
        disk.put("aa" + "0" * 62, {"payload": "x" * 1000})
        disk.put("bb" + "0" * 62, {"payload": "x" * 1000})
        # Backdate 'aa', then read it: the read must refresh it so the
        # next eviction removes 'bb' instead.
        old = time.time() - 1000
        os.utime(disk.path_for("aa" + "0" * 62), (old, old))
        os.utime(disk.path_for("bb" + "0" * 62), (old + 1, old + 1))
        assert disk.get("aa" + "0" * 62) is not None
        disk.put("cc" + "0" * 62, {"payload": "x" * 1000})
        assert disk.get("bb" + "0" * 62) is None
        assert disk.get("aa" + "0" * 62) is not None


class TestBatchCompiles:
    def test_batch_shares_identical_prefixes(self, tmp_path):
        batch = toolchain_on(tmp_path, budget=64)
        result = batch.compile_many([SOURCE, SOURCE, VARIANT])
        assert result.ok
        assert len(result.states) == 3
        first, duplicate, variant = result.entries
        assert not any(first.state.cache_hits.values())
        assert all(duplicate.state.cache_hits.values())
        assert not any(variant.state.cache_hits.values())
        assert duplicate.state.binary.words == first.state.binary.words
        counts = result.stage_counts()
        assert counts["memory"] == len(STAGE_NAMES)
        assert counts["executed"] == 2 * len(STAGE_NAMES)

    def test_batch_warm_across_processes(self, tmp_path):
        toolchain_on(tmp_path, budget=64).compile_many([SOURCE, VARIANT])
        result = toolchain_on(tmp_path, budget=64).compile_many(
            [SOURCE, VARIANT])
        counts = result.stage_counts()
        assert counts["executed"] == 0
        assert counts["disk"] == 2 * len(STAGE_NAMES)

    def test_failures_do_not_abort_the_batch(self):
        result = Toolchain(audio_core(), cache=None, budget=1) \
            .compile_many([SOURCE, SOURCE])
        assert not result.ok
        assert [entry.ok for entry in result.entries] == [False, False]
        assert "BudgetExceededError" in result.entries[0].error
        assert result.states == []

    def test_bad_budget_mixed_with_good(self):
        bad = "app broken; input i; output o; loop { o = frobnicate(i); }"
        result = Toolchain(audio_core(), cache=None, budget=64) \
            .compile_many([SOURCE, bad])
        assert result.entries[0].ok
        assert not result.entries[1].ok
        assert not result.ok

    def test_names_label_entries(self):
        toolchain = Toolchain(audio_core(), cache=None, budget=64)
        result = toolchain.compile_many([SOURCE], names=["a.dsp"])
        assert result.entries[0].name == "a.dsp"
        with pytest.raises(ValueError, match="names"):
            toolchain.compile_many([SOURCE], names=["a", "b"])

    def test_batch_stop_after(self):
        result = Toolchain(audio_core(), cache=StageCache(),
                           stop_after="schedule").compile_many([SOURCE])
        state = result.entries[0].state
        assert not state.is_complete
        assert state.schedule.length >= 1


class TestDefaultDirectory:
    def test_env_var_overrides(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert diskcache.default_cache_dir() == tmp_path / "custom"

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert diskcache.default_cache_dir() == tmp_path / "xdg" / "repro"
