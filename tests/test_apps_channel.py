"""Tests for the DECT/GSM channel front-end workload."""

import math

import pytest

from repro import Q15, Toolchain, audio_core, fir_core, run_reference
from repro.apps import channel_frontend_application
from repro.arch import Allocation, intermediate_architecture
from repro.core import ConflictGraph, InstructionSet, compatible_pairs


def tone(n, amplitude=0.4, period=8.0, offset=0.1):
    return [Q15.from_float(offset + amplitude * math.sin(2 * math.pi * i / period))
            for i in range(n)]


class TestChannelFrontend:
    def test_builds_and_validates(self):
        dfg = channel_frontend_application()
        assert dfg.inputs == ["rf_in"]
        assert set(dfg.outputs) == {"sym", "corr", "rssi"}
        assert set(dfg.states) == {"dc", "mfline", "symline", "energy"}

    def test_audio_core_rejects_the_dect_domain(self):
        # The audio core's ALU has no 'sub' (exactly the paper's 13
        # classes) — a DECT front-end needs its own in-house core,
        # which is the paper's whole premise.
        from repro.errors import BindingError

        with pytest.raises(BindingError, match="'sub'"):
            Toolchain(audio_core(), cache=None) \
                .compile(channel_frontend_application())

    def test_compiles_on_fir_core_bit_exact(self):
        dfg = channel_frontend_application()
        compiled = Toolchain(fir_core(), cache=None).compile(dfg)
        stimulus = {"rf_in": tone(24)}
        assert compiled.run(stimulus) == run_reference(dfg, stimulus)

    def test_dc_offset_is_tracked_out(self):
        # With a pure DC input, the symbol output must decay towards 0.
        dfg = channel_frontend_application()
        n = 400
        stimulus = {"rf_in": [Q15.from_float(0.25)] * n}
        outputs = run_reference(dfg, stimulus)
        head = sum(abs(v) for v in outputs["sym"][8:40])
        tail = sum(abs(v) for v in outputs["sym"][-32:])
        assert tail < head / 2

    def test_rssi_rises_with_signal(self):
        dfg = channel_frontend_application()
        quiet = run_reference(dfg, {"rf_in": [0] * 64})
        loud = run_reference(dfg, {"rf_in": tone(64, amplitude=0.7, offset=0.0)})
        assert max(loud["rssi"]) > max(quiet["rssi"])

    def test_exploration_finds_a_dect_core(self):
        # Phase-1 usage: the front-end as a representative application.
        dfg = channel_frontend_application()
        core = intermediate_architecture([dfg], Allocation(), name="dect")
        compiled = Toolchain(core, cache=None).compile(dfg)
        stimulus = {"rf_in": tone(16)}
        assert compiled.run(stimulus) == run_reference(dfg, stimulus)


class TestConflictGraphInvariance:
    """Rules 3-4 never change pairwise compatibility, so the conflict
    graph from *desired* types must equal the one from the closure."""

    @pytest.mark.parametrize("desired", [
        [frozenset("ST"), frozenset("SUV"), frozenset("XY")],
        [frozenset("AB")],
        [],
        [frozenset("ABCD")],
    ])
    def test_from_types_equals_from_closure(self, desired):
        classes = sorted({c for t in desired for c in t} | {"Z"})
        direct = ConflictGraph.from_types(classes, desired)
        closed = ConflictGraph.from_instruction_set(
            InstructionSet.from_desired(classes, desired)
        )
        assert direct == closed

    def test_pairs_match_definition(self):
        desired = [frozenset("PQR")]
        pairs = compatible_pairs(desired)
        graph = ConflictGraph.from_types(["P", "Q", "R", "S"], desired)
        for pair in pairs:
            a, b = sorted(pair)
            assert not graph.has_edge(a, b)
        assert graph.has_edge("P", "S")
