"""Tests for the typed public surface: the core registry,
:class:`CompileOptions` validation, and the :class:`Toolchain` facade.
"""

import pytest

from repro import (
    Q15,
    CompileOptions,
    SweepSpec,
    Toolchain,
    audio_core,
    get_core,
    list_cores,
    register_core,
    resolve_core,
    run_reference,
    tiny_core,
)
from repro.arch import CoreSpec, dump_core, unregister_core
from repro.errors import OptionsError, ReproError
from repro.pipeline import StageCache

SOURCE = """
app gain;
param g = 0.5;
input i; output o;
loop { o = mlt(g, i); }
"""


def stimulus():
    return {"i": [Q15.from_float(v) for v in (0.5, -0.25, 0.125)]}


class TestRegistry:
    def test_library_cores_are_registered(self):
        assert {"audio", "fir", "tiny", "adaptive"} <= set(list_cores())

    def test_get_core_instantiates_fresh_specs(self):
        first, second = get_core("audio"), get_core("audio")
        assert isinstance(first, CoreSpec)
        assert first is not second

    def test_get_core_unknown_names_known(self):
        with pytest.raises(ReproError, match="unknown core 'warp-drive'"):
            get_core("warp-drive")

    def test_register_custom_core_everywhere(self):
        source = "app p; input i; output o; loop { o = pass(i); }"
        register_core("my-tiny", tiny_core)
        try:
            assert "my-tiny" in list_cores()
            compiled = Toolchain("my-tiny", cache=None).compile(source)
            reference = Toolchain(tiny_core(), cache=None).compile(source)
            assert compiled.binary.words == reference.binary.words
        finally:
            unregister_core("my-tiny")
        assert "my-tiny" not in list_cores()

    def test_duplicate_registration_needs_replace(self):
        with pytest.raises(ReproError, match="already registered"):
            register_core("audio", audio_core)
        # replace=True is allowed (restore the original immediately).
        register_core("audio", audio_core, replace=True)

    def test_unregister_unknown_core(self):
        with pytest.raises(ReproError, match="not registered"):
            unregister_core("nope")

    def test_factory_must_return_a_core(self):
        register_core("broken", lambda: 42)
        try:
            with pytest.raises(ReproError, match="not a CoreSpec"):
                get_core("broken")
        finally:
            unregister_core("broken")

    def test_resolve_core_passthrough_name_and_file(self, tmp_path):
        spec = tiny_core()
        assert resolve_core(spec) is spec
        assert resolve_core("tiny").name == "tiny"
        path = tmp_path / "core.json"
        path.write_text(dump_core(tiny_core()))
        assert resolve_core(str(path)).name == "tiny"

    def test_resolve_core_rejects_garbage(self):
        with pytest.raises(ReproError, match="unknown core"):
            resolve_core("no-such-core")
        with pytest.raises(ReproError, match="expected a CoreSpec"):
            resolve_core(42)


class TestCompileOptionsValidation:
    def test_defaults_are_valid(self):
        options = CompileOptions()
        assert options.opt == 1
        assert options.budget is None
        assert options.disk_cache is True

    @pytest.mark.parametrize("field,value,message", [
        ("opt", 5, "opt must be one of"),
        ("budget", 0, "budget must be >= 1"),
        ("budget", -3, "budget must be >= 1"),
        ("cover", "magic", "cover must be one of"),
        ("mode", "bogus", "mode must be one of"),
        ("repeat", 0, "repeat must be >= 1"),
        ("repeat", -1, "repeat must be >= 1"),
        ("restarts", -1, "restarts must be >= 0"),
        ("stop_after", "codegen", "unknown stage"),
    ])
    def test_out_of_range_values_rejected(self, field, value, message):
        with pytest.raises(OptionsError, match=message):
            CompileOptions(**{field: value})

    def test_bools_are_rejected_in_integer_fields(self):
        # isinstance(True, int) is True, but canonical JSON renders
        # True != 1 — accepting bools would let "equal" options produce
        # different stage-cache keys.
        for field in ("opt", "budget", "repeat", "restarts", "seed"):
            with pytest.raises(OptionsError):
                CompileOptions(**{field: True})

    def test_options_error_is_a_value_error(self):
        # Generic callers can catch ValueError without knowing repro.
        with pytest.raises(ValueError):
            CompileOptions(budget=0)

    def test_replace_revalidates(self):
        options = CompileOptions(budget=64)
        assert options.replace(budget=32).budget == 32
        with pytest.raises(OptionsError):
            options.replace(budget=0)

    def test_from_legacy_kwargs_maps_old_names(self):
        options = CompileOptions.from_legacy_kwargs(
            budget=64, opt_level=2, cover_algorithm="exact",
            repeat_count=3, mode="repeat")
        assert options == CompileOptions(budget=64, opt=2, cover="exact",
                                         repeat=3, mode="repeat")

    def test_from_legacy_kwargs_rejects_unknown(self):
        with pytest.raises(OptionsError, match="unknown compile option"):
            CompileOptions.from_legacy_kwargs(optimize_harder=True)


class TestToolchain:
    def test_facade_matches_legacy_path_bit_for_bit(self):
        """The acceptance criterion: the typed facade and the legacy
        one-shot wrapper produce bit-identical binaries."""
        import repro

        facade = Toolchain(core="audio", options=CompileOptions(opt=2)) \
            .compile(SOURCE)
        with pytest.warns(DeprecationWarning):
            legacy = repro.compile_application(SOURCE, audio_core(),
                                               opt_level=2)
        assert facade.binary.words == legacy.binary.words
        assert facade.binary.rom_words == legacy.binary.rom_words

    def test_option_field_shorthand(self):
        by_fields = Toolchain("fir", cache=None, budget=16, opt=2)
        by_object = Toolchain("fir", CompileOptions(budget=16, opt=2),
                              cache=None)
        assert by_fields.options == by_object.options
        with pytest.raises(OptionsError):
            Toolchain("fir", budget=0)

    def test_options_object_plus_field_overrides(self):
        toolchain = Toolchain("fir", CompileOptions(budget=16), cache=None,
                              opt=0)
        assert toolchain.options == CompileOptions(budget=16, opt=0)

    def test_run_executes_on_the_simulator(self):
        outputs = Toolchain("fir", cache=None).run(SOURCE, stimulus())
        from repro import parse_source

        assert outputs == run_reference(parse_source(SOURCE), stimulus())

    def test_compile_many_shares_the_cache(self):
        toolchain = Toolchain("fir", cache=StageCache(), budget=16)
        result = toolchain.compile_many([SOURCE, SOURCE])
        assert result.ok
        assert not any(result.entries[0].state.cache_hits.values())
        assert all(result.entries[1].state.cache_hits.values())

    def test_replace_shares_cache_and_rebinds(self):
        toolchain = Toolchain("audio", cache=StageCache(), budget=64)
        variant = toolchain.replace(budget=32)
        assert variant.cache is toolchain.cache
        assert variant.core is toolchain.core
        assert variant.options.budget == 32
        retargeted = toolchain.replace(core="tiny")
        assert retargeted.core.name == "tiny"

    def test_replace_rebuilds_cache_when_placement_changes(self, tmp_path,
                                                           monkeypatch):
        # Sharing the old cache would silently ignore the new
        # placement; a placement change gets a fresh default cache.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        toolchain = Toolchain("fir", disk_cache=False)
        persistent = toolchain.replace(disk_cache=True)
        assert persistent.cache is not toolchain.cache
        assert persistent.cache.disk is not None
        moved = persistent.replace(cache_dir=str(tmp_path / "elsewhere"))
        assert moved.cache is not persistent.cache
        same = persistent.replace(budget=16)
        assert same.cache is persistent.cache
        # An explicitly uncached toolchain stays uncached — placement
        # changes must not resurrect caching behind the user's back.
        uncached = Toolchain("fir", cache=None)
        assert uncached.replace(cache_dir=str(tmp_path / "new")).cache is None
        assert uncached.replace(disk_cache=False).cache is None

    def test_default_cache_honors_disk_cache_toggle(self):
        with_disk = Toolchain("fir")
        without = Toolchain("fir", disk_cache=False)
        assert with_disk.cache.disk is not None
        assert without.cache.disk is None

    def test_default_disk_cache_warms_across_toolchains(self):
        # Two independent toolchains, no shared memory tier: the second
        # restores every stage from the persistent store (the hermetic
        # fixture points it at a per-test directory).
        Toolchain("fir", budget=16).compile(SOURCE)
        state = Toolchain("fir", budget=16).run_pipeline(SOURCE)
        assert all(state.cache_hits.values())
        assert all(src == "disk" for src in state.cache_sources.values())

    def test_explore_uses_bound_options(self):
        from repro import parse_source

        spec = SweepSpec(n_mults=(1,), n_alus=(1, 2))
        toolchain = Toolchain("audio", budget=32, disk_cache=False)
        points = toolchain.explore([SOURCE], spec)
        assert len(points) == 2
        assert all(p.opt_level == toolchain.options.opt for p in points)
        refined = toolchain.explore([parse_source(SOURCE)], spec, refine=True)
        assert refined.n_grid == 2

    def test_explore_on_an_uncached_toolchain_stays_uncached(self, tmp_path,
                                                             monkeypatch):
        # cache=None means "no caching" for every verb, explore
        # included: nothing may be written to the persistent store.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        toolchain = Toolchain("audio", cache=None)
        points = toolchain.explore([SOURCE], SweepSpec())
        assert len(points) == 1
        sweep = toolchain.explore([SOURCE], SweepSpec(n_alus=(1, 2)),
                                  refine=True)
        assert sweep.n_evaluated >= 1
        assert not (tmp_path / "store").exists()

    def test_explore_memo_persists_across_calls(self):
        toolchain = Toolchain("audio", disk_cache=False)
        toolchain.explore([SOURCE], SweepSpec())
        assert toolchain._explore_cache.misses == 1
        toolchain.explore([SOURCE], SweepSpec())
        assert toolchain._explore_cache.hits == 1
        assert toolchain._explore_cache.misses == 1

    def test_explore_memo_mirrors_the_stage_cache_backing(self, tmp_path,
                                                          monkeypatch):
        # A memory-only toolchain must not read or write the shared
        # persistent store; a disk-backed one memoizes into the same
        # store its stage cache uses.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        memory_only = Toolchain("audio", disk_cache=False)
        memory_only.explore([SOURCE], SweepSpec())
        assert not (tmp_path / "store").exists()
        disk_backed = Toolchain("audio")
        disk_backed.explore([SOURCE], SweepSpec())
        assert (tmp_path / "store").exists()

    def test_explore_refine_needs_a_sweep_spec(self):
        toolchain = Toolchain("audio", disk_cache=False)
        with pytest.raises(ValueError, match="SweepSpec"):
            toolchain.explore([SOURCE], [object()], refine=True)

    def test_explore_axes_requires_refine(self):
        toolchain = Toolchain("audio", disk_cache=False)
        with pytest.raises(ValueError, match="refine=True"):
            toolchain.explore([SOURCE], SweepSpec(),
                              axes=("worst_length", "n_opus"))

    def test_run_accepts_merges(self):
        from repro.arch import MergeSpec

        merges = MergeSpec().merge_register_files(
            "rf_opb", ["rf_opb1", "rf_opb2"])
        src = ("app m; param k = 0.5; input i; output o; state s(1); "
               "loop { s = i; o = add_clip(mlt(k, s@1), i); }")
        outputs = Toolchain("audio", cache=None).run(
            src, stimulus(), merges=merges)
        from repro import parse_source

        assert outputs == run_reference(parse_source(src), stimulus())

    def test_core_resolution_failure_is_a_repro_error(self):
        with pytest.raises(ReproError, match="unknown core"):
            Toolchain("warp-drive")
