"""Tests for dual-data-memory (X/Y) cores: state partitioning, per-ACU
modulo configuration, and end-to-end correctness."""

import pytest

from repro import Q15, Toolchain, run_reference
from repro.apps import stress_application
from repro.arch import Allocation, intermediate_architecture
from repro.lang import parse_source
from repro.rtgen import bind, generate_rts

TWO_STATE = """
app two_state;
param k0 = 0.5, k1 = 0.25;
input i; output o;
state a(1), b(2);
loop {
  a = i;
  b = i;
  m0 := mlt(k0, a@1);
  m1 := mlt(k1, b@2);
  o = add_clip(m0, m1);
}
"""


def dual_core():
    dfg = parse_source(TWO_STATE)
    return intermediate_architecture([dfg], Allocation(n_ram=2), name="dual")


class TestPartitioning:
    def test_states_split_across_memories(self):
        dfg = parse_source(TWO_STATE)
        binding = bind(dfg, dual_core())
        assert set(binding.state_ram.values()) == {"ram_0", "ram_1"}

    def test_each_memory_gets_its_own_acu(self):
        dfg = parse_source(TWO_STATE)
        binding = bind(dfg, dual_core())
        assert binding.ram_acu == {"ram_0": "acu_0", "ram_1": "acu_1"}

    def test_per_memory_layouts_and_moduli(self):
        program = generate_rts(parse_source(TWO_STATE), dual_core())
        assert set(program.memories) == {"ram_0", "ram_1"}
        # a(1) alone: window 2, 1 state -> modulus 2;
        # b(2) alone: window 3, 1 state -> modulus 3.
        moduli = sorted(
            layout.modulus for layout in program.memories.values()
        )
        assert moduli == [2, 3]
        assert set(program.acu_moduli) == {"acu_0", "acu_1"}

    def test_two_frame_pointers(self):
        program = generate_rts(parse_source(TWO_STATE), dual_core())
        assert len(program.loop_carries) == 2
        files = {carry.register_file for carry in program.loop_carries}
        assert len(files) == 2   # one fp per ACU operand file

    def test_memory_property_rejects_multi_ram(self):
        program = generate_rts(parse_source(TWO_STATE), dual_core())
        with pytest.raises(ValueError, match="several data memories"):
            _ = program.memory

    def test_single_ram_keeps_convenience_property(self):
        dfg = parse_source(TWO_STATE)
        core = intermediate_architecture([dfg], Allocation(n_ram=1))
        program = generate_rts(dfg, core)
        assert program.memory is not None
        assert program.memory.n_states == 2


class TestEndToEnd:
    def test_dual_memory_bit_exact(self):
        dfg = parse_source(TWO_STATE)
        compiled = Toolchain(dual_core(), cache=None).compile(dfg)
        xs = [Q15.from_float(v) for v in
              (0.5, -0.25, 0.125, 0.75, -0.5, 0.3, 0.0, 0.9)]
        assert compiled.run({"x": xs} if "x" in dfg.inputs else {"i": xs}) \
            == run_reference(dfg, {"i": xs})

    def test_dual_memory_relieves_the_ram_bottleneck(self):
        # -O0: the study needs the RAM-bound access pattern as written;
        # the optimizer would CSE the shared delay-line reads away and
        # drop the untapped sections, moving the bottleneck elsewhere.
        dfg = stress_application(8, seed=3)
        single = Toolchain(intermediate_architecture([dfg], Allocation(n_ram=1)),
            cache=None, opt=0) \
            .compile(dfg)
        dual = Toolchain(intermediate_architecture([dfg], Allocation(n_ram=2)),
            cache=None, opt=0) \
            .compile(dfg)
        assert dual.n_cycles < single.n_cycles

    def test_dual_memory_stress_bit_exact(self):
        dfg = stress_application(5, seed=9)
        compiled = Toolchain(intermediate_architecture([dfg], Allocation(n_ram=2)),
            cache=None) \
            .compile(dfg)
        xs = [Q15.from_float(0.05 * ((i * 13) % 17 - 8)) for i in range(12)]
        assert compiled.run({"x": xs}) == run_reference(dfg, {"x": xs})

    def test_more_rams_than_acus_degrades_gracefully(self):
        # Hand-build a core with 2 RAMs but one ACU: only one memory
        # can hold state; compilation must still work.
        dfg = parse_source(TWO_STATE)
        core = intermediate_architecture([dfg], Allocation(n_ram=2))
        # Remove acu_1 pairing by giving both RAM port files to acu_0 is
        # architectural surgery; instead verify the binder's contract
        # directly on a core with fewer ACUs.
        binding = bind(dfg, core)
        assert len(set(binding.ram_acu.values())) == len(binding.ram_acu)
