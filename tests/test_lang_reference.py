"""Tests for the golden reference interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.fixed import Q15
from repro.lang import DfgBuilder, parse_source, run_reference

samples = st.lists(
    st.integers(min_value=Q15.min_value, max_value=Q15.max_value),
    min_size=1,
    max_size=32,
)


def passthrough_dfg():
    b = DfgBuilder("pass")
    b.output("o", b.op("pass", b.input("i")))
    return b.build()


def one_tap_delay_dfg():
    b = DfgBuilder("z1")
    s = b.state("s", depth=1)
    b.write(s, b.input("i"))
    b.output("o", b.op("pass", b.delay(s, 1)))
    return b.build()


class TestBasics:
    def test_passthrough(self):
        outputs = run_reference(passthrough_dfg(), {"i": [1, 2, 3]})
        assert outputs == {"o": [1, 2, 3]}

    def test_unit_delay(self):
        outputs = run_reference(one_tap_delay_dfg(), {"i": [5, 6, 7]})
        assert outputs == {"o": [0, 5, 6]}

    def test_two_frame_delay_reads_history(self):
        b = DfgBuilder("z2")
        s = b.state("s", depth=2)
        b.write(s, b.input("i"))
        b.output("o", b.op("pass", b.delay(s, 2)))
        outputs = run_reference(b.build(), {"i": [1, 2, 3, 4]})
        assert outputs == {"o": [0, 0, 1, 2]}

    def test_delay_ignores_textual_order(self):
        # Reading s@1 *before* this iteration's write still returns the
        # previous iteration's value.
        b = DfgBuilder("order")
        s = b.state("s", depth=1)
        old = b.delay(s, 1)
        b.write(s, b.input("i"))
        b.output("o", b.op("pass", old))
        outputs = run_reference(b.build(), {"i": [10, 20, 30]})
        assert outputs == {"o": [0, 10, 20]}

    def test_param_is_quantised(self):
        b = DfgBuilder("gain")
        g = b.param("g", 0.5)
        b.output("o", b.op("mult", g, b.input("i")))
        outputs = run_reference(b.build(), {"i": [Q15.from_float(0.5)]})
        assert outputs == {"o": [Q15.from_float(0.25)]}

    def test_iteration_count_defaults_to_shortest_stream(self):
        b = DfgBuilder("two")
        i0, i1 = b.input("a"), b.input("b")
        b.output("o", b.op("add", i0, i1))
        outputs = run_reference(b.build(), {"a": [1, 2, 3], "b": [10, 20]})
        assert outputs == {"o": [11, 22]}

    def test_missing_stimulus_raises(self):
        with pytest.raises(SimulationError, match="missing stimulus"):
            run_reference(passthrough_dfg(), {})

    def test_short_stimulus_raises(self):
        with pytest.raises(SimulationError, match="samples"):
            run_reference(passthrough_dfg(), {"i": [1]}, n_iterations=5)

    def test_no_inputs_needs_count(self):
        b = DfgBuilder("const")
        b.output("o", b.op("pass", b.param("k", 0.25)))
        with pytest.raises(SimulationError, match="n_iterations"):
            run_reference(b.build(), {})
        outputs = run_reference(b.build(), {}, n_iterations=3)
        assert outputs == {"o": [Q15.from_float(0.25)] * 3}


class TestTrebleSection:
    SOURCE = """
    app treble;
    param d1 = 0.40, d2 = -0.20, e1 = 0.30;
    input IN; output out;
    state u(2), v(2);
    loop {
      u  = IN;
      x0 := u@2;
      m  := mlt(d2, x0);
      a  := pass(m);
      x2 := v@1;
      m  := mlt(e1, x2);
      a  := add(m, a);
      x1 := u@1;
      m  := mlt(d1, x1);
      rd := add_clip(m, a);
      v  = rd;
      out = rd;
    }
    """

    def test_against_direct_recurrence(self):
        dfg = parse_source(self.SOURCE)
        stimulus = [Q15.from_float(x) for x in
                    (0.1, -0.2, 0.5, 0.9, -0.9, 0.3, 0.0, 0.7)]
        outputs = run_reference(dfg, {"IN": stimulus})

        d1, d2, e1 = (Q15.from_float(c) for c in (0.40, -0.20, 0.30))
        u_hist, v_hist = [], []
        expected = []
        for x in stimulus:
            u1 = u_hist[-1] if len(u_hist) >= 1 else 0
            u2 = u_hist[-2] if len(u_hist) >= 2 else 0
            v1 = v_hist[-1] if len(v_hist) >= 1 else 0
            acc = Q15.add(Q15.mult(e1, v1), Q15.mult(d2, u2))
            rd = Q15.add_clip(Q15.mult(d1, u1), acc)
            u_hist.append(x)
            v_hist.append(rd)
            expected.append(rd)
        assert outputs["out"] == expected


class TestProperties:
    @given(samples)
    def test_passthrough_is_identity(self, xs):
        assert run_reference(passthrough_dfg(), {"i": xs})["o"] == xs

    @given(samples)
    def test_unit_delay_shifts(self, xs):
        outputs = run_reference(one_tap_delay_dfg(), {"i": xs})
        assert outputs["o"] == [0] + xs[:-1]

    @given(samples)
    @settings(max_examples=25)
    def test_outputs_always_in_range(self, xs):
        dfg = parse_source(TestTrebleSection.SOURCE)
        for y in run_reference(dfg, {"IN": xs})["out"]:
            assert Q15.min_value <= y <= Q15.max_value
