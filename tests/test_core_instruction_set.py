"""Tests for instruction sets and construction rules (paper, sect. 6.2).

The running example is the paper's own: classes S, T, U, V, X, Y with
desired instruction types {S,T}, {S,U,V} and {X,Y}; the allowed closure
is

    I = {NOP, {S}, {T}, {U}, {V}, {X}, {Y}, {S,U}, {S,V}, {U,V},
         {S,U,V}, {S,T}, {X,Y}}
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NOP, InstructionSet, closure, compatible_pairs
from repro.errors import InstructionSetError

CLASSES = ["S", "T", "U", "V", "X", "Y"]
DESIRED = [frozenset("ST"), frozenset("SUV"), frozenset("XY")]

PAPER_I = {
    NOP,
    frozenset("S"), frozenset("T"), frozenset("U"),
    frozenset("V"), frozenset("X"), frozenset("Y"),
    frozenset("SU"), frozenset("SV"), frozenset("UV"),
    frozenset("SUV"), frozenset("ST"), frozenset("XY"),
}


class TestClosure:
    def test_paper_example_exactly(self):
        assert closure(CLASSES, DESIRED) == PAPER_I

    def test_closure_is_idempotent(self):
        once = closure(CLASSES, DESIRED)
        again = closure(CLASSES, sorted(once, key=sorted))
        assert once == again

    def test_closure_contains_nop_and_singletons(self):
        result = closure(CLASSES, [])
        assert result == {NOP} | {frozenset({c}) for c in CLASSES}

    def test_unknown_class_rejected(self):
        with pytest.raises(InstructionSetError, match="unknown"):
            closure(["A"], [frozenset({"A", "Z"})])

    def test_rule4_pairwise_closure(self):
        # {P,Q}, {P,R}, {Q,R} allowed => {P,Q,R} must be allowed.
        result = closure(["P", "Q", "R"],
                         [frozenset("PQ"), frozenset("PR"), frozenset("QR")])
        assert frozenset("PQR") in result


class TestInstructionSet:
    def iset(self):
        return InstructionSet.from_desired(CLASSES, DESIRED)

    def test_from_desired_validates(self):
        self.iset().validate()  # must not raise

    def test_allows(self):
        iset = self.iset()
        assert iset.allows({"S", "U", "V"})
        assert iset.allows(set())           # NOP
        assert not iset.allows({"S", "X"})
        assert not iset.allows({"S", "T", "U"})

    def test_maximal_types(self):
        maximal = set(self.iset().maximal_types())
        assert maximal == {frozenset("SUV"), frozenset("ST"), frozenset("XY")}

    def test_pretty_mentions_nop_first(self):
        assert self.iset().pretty().startswith("I = {NOP, ")

    def test_len_matches_paper(self):
        assert len(self.iset()) == 13

    def test_violations_missing_nop(self):
        bad = InstructionSet(CLASSES, PAPER_I - {NOP})
        assert any("rule 1" in v for v in bad.violations())

    def test_violations_missing_singleton(self):
        bad = InstructionSet(CLASSES, PAPER_I - {frozenset("T")})
        problems = bad.violations()
        assert any("rule 2" in v and "{T}" in v for v in problems)

    def test_violations_missing_subset(self):
        bad = InstructionSet(CLASSES, PAPER_I - {frozenset("SU")})
        problems = bad.violations()
        assert any("rule 3" in v for v in problems)

    def test_violations_missing_pairwise_implied(self):
        bad = InstructionSet(CLASSES, PAPER_I - {frozenset("SUV")})
        problems = bad.violations()
        assert any("rule 4" in v for v in problems)

    def test_validate_raises_with_explanation(self):
        bad = InstructionSet(CLASSES, PAPER_I - {NOP})
        with pytest.raises(InstructionSetError, match="rule 1"):
            bad.validate()

    def test_compatible(self):
        iset = self.iset()
        assert iset.compatible("S", "T")
        assert iset.compatible("S", "S")
        assert not iset.compatible("S", "X")


class TestCompatiblePairs:
    def test_pairs_of_paper_example(self):
        pairs = compatible_pairs(DESIRED)
        assert pairs == {
            frozenset("ST"), frozenset("SU"), frozenset("SV"),
            frozenset("UV"), frozenset("XY"),
        }


@st.composite
def desired_types(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    classes = [chr(ord("A") + i) for i in range(n)]
    n_types = draw(st.integers(min_value=0, max_value=4))
    types = [
        frozenset(draw(st.sets(st.sampled_from(classes), max_size=n)))
        for _ in range(n_types)
    ]
    return classes, types


class TestClosureProperties:
    @given(desired_types())
    @settings(max_examples=60)
    def test_closure_satisfies_all_rules(self, case):
        classes, types = case
        iset = InstructionSet.from_desired(classes, types)
        assert iset.violations() == []

    @given(desired_types())
    @settings(max_examples=60)
    def test_closure_contains_desired(self, case):
        classes, types = case
        result = closure(classes, types)
        for t in types:
            assert t in result

    @given(desired_types())
    @settings(max_examples=60)
    def test_closure_adds_no_new_pairs(self, case):
        classes, types = case
        result = closure(classes, types)
        assert compatible_pairs(sorted(result, key=sorted)) == compatible_pairs(types)

    @given(desired_types())
    @settings(max_examples=30)
    def test_closure_idempotent(self, case):
        classes, types = case
        once = closure(classes, types)
        assert closure(classes, sorted(once, key=sorted)) == once
