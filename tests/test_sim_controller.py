"""Controller-level simulator tests: hand-assembled microcode programs.

The compiled flow only exercises IDLE/CONT/JUMP; these tests drive the
remaining controller features of figure 4 — nested hardware loops via
the stack, conditional branches on datapath flags, HALT — by building
instruction words directly through the derived format.

Tiny-core facts used throughout: registers reset to 0; constants can
reach only the ALU's second operand file (``rf_alu_p1`` via
``bus_prg_c``); ALU results fan out to both operand files and the
output file.
"""

import pytest

from repro.arch import ControllerSpec, CoreSpec, CtrlOp, tiny_datapath
from repro.encode import CTRL_OPCODES, derive_format, opcode_table
from repro.encode.assembler import EncodedProgram
from repro.errors import SimulationError
from repro.sim import CoreSimulator


def make_core(stack_depth=4, n_flags=0, conditionals=False):
    return CoreSpec(
        name="ctrl-test",
        datapath=tiny_datapath(),
        controller=ControllerSpec(
            stack_depth=stack_depth,
            n_flags=n_flags,
            supports_conditionals=conditionals,
            supports_loops=True,
            program_size=64,
        ),
    )


def mux_index(core, rf_name, bus_name):
    mux = core.datapath.muxes.get(f"mux_{rf_name}")
    if mux is None:
        return None
    return next(i for i, bus in enumerate(mux.inputs) if bus.name == bus_name)


class ProgramBuilder:
    """Assemble words field-by-field for controller tests."""

    def __init__(self, core):
        self.core = core
        self.fmt = derive_format(core)
        self.opcodes = opcode_table(core)
        self.words: list[dict] = []

    def word(self, ctrl=CtrlOp.CONT, arg=0, flag=0, **fields) -> int:
        values = {"ctrl.op": CTRL_OPCODES[ctrl], "ctrl.arg": arg}
        if "ctrl.flag" in self.fmt:
            values["ctrl.flag"] = flag
        values.update(fields)
        self.words.append(values)
        return len(self.words) - 1

    def alu(self, operation, ctrl=CtrlOp.CONT, arg=0, a=0, b=0, dest=None,
            flag=0):
        """An ALU operation; ``dest`` is (register file, register)."""
        fields = {
            "alu.op": self.opcodes["alu"][operation],
            "alu.p0.addr": a,
            "alu.p1.addr": b,
        }
        if dest is not None:
            rf, addr = dest
            fields[f"{rf}.wr_en"] = 1
            fields[f"{rf}.wr_addr"] = addr
            select = mux_index(self.core, rf, "bus_alu")
            if select is not None:
                fields[f"{rf}.mux"] = select
        return self.word(ctrl=ctrl, arg=arg, flag=flag, **fields)

    def const_p1(self, value, register, ctrl=CtrlOp.CONT, arg=0):
        """Load an immediate into rf_alu_p1[register]."""
        fields = {
            "prg_c.op": self.opcodes["prg_c"]["const"],
            "prg_c.p0.imm": value & 0xFFFF,
            "rf_alu_p1.wr_en": 1,
            "rf_alu_p1.wr_addr": register,
            "rf_alu_p1.mux": mux_index(self.core, "rf_alu_p1", "bus_prg_c"),
        }
        return self.word(ctrl=ctrl, arg=arg, **fields)

    def build(self, mode="once") -> EncodedProgram:
        return EncodedProgram(
            core=self.core,
            format=self.fmt,
            words=[self.fmt.encode(v) for v in self.words],
            n_body=len(self.words),
            body_offset=0,
            rom_words=(),
            acu_moduli={},
            input_map={},
            output_map={},
            initial_registers={},
            mode=mode,
        )


class TestHardwareLoops:
    def test_loop_repeats_body(self):
        core = make_core()
        pb = ProgramBuilder(core)
        pb.const_p1(1, 0)                                   # p1[0] <- 1
        pb.word(ctrl=CtrlOp.LOOP, arg=5)
        pb.alu("add", a=0, b=0, dest=("rf_alu_p0", 0))      # p0[0] += 1
        pb.word(ctrl=CtrlOp.ENDL)
        pb.word(ctrl=CtrlOp.HALT)
        sim = CoreSimulator(pb.build())
        sim.run_frames(0, max_cycles=100)
        assert sim.halted
        assert sim.registers["rf_alu_p0"][0] == 5

    def test_loop_count_one_runs_once(self):
        core = make_core()
        pb = ProgramBuilder(core)
        pb.const_p1(1, 0)
        pb.word(ctrl=CtrlOp.LOOP, arg=1)
        pb.alu("add", a=0, b=0, dest=("rf_alu_p0", 0))
        pb.word(ctrl=CtrlOp.ENDL)
        pb.word(ctrl=CtrlOp.HALT)
        sim = CoreSimulator(pb.build())
        sim.run_frames(0, max_cycles=50)
        assert sim.registers["rf_alu_p0"][0] == 1

    def test_nested_loops_multiply(self):
        core = make_core()
        pb = ProgramBuilder(core)
        pb.const_p1(1, 0)
        pb.word(ctrl=CtrlOp.LOOP, arg=3)
        pb.word(ctrl=CtrlOp.LOOP, arg=4)
        pb.alu("add", a=0, b=0, dest=("rf_alu_p0", 0))
        pb.word(ctrl=CtrlOp.ENDL)
        pb.word(ctrl=CtrlOp.ENDL)
        pb.word(ctrl=CtrlOp.HALT)
        sim = CoreSimulator(pb.build())
        sim.run_frames(0, max_cycles=200)
        assert sim.registers["rf_alu_p0"][0] == 12   # 3 * 4

    def test_loop_stack_overflow(self):
        core = make_core(stack_depth=1)
        pb = ProgramBuilder(core)
        pb.word(ctrl=CtrlOp.LOOP, arg=2)
        pb.word(ctrl=CtrlOp.LOOP, arg=2)   # second push must overflow
        pb.word(ctrl=CtrlOp.ENDL)
        pb.word(ctrl=CtrlOp.ENDL)
        pb.word(ctrl=CtrlOp.HALT)
        sim = CoreSimulator(pb.build())
        with pytest.raises(SimulationError, match="stack overflow"):
            sim.run_frames(0, max_cycles=50)

    def test_endl_without_loop(self):
        core = make_core()
        pb = ProgramBuilder(core)
        pb.word(ctrl=CtrlOp.ENDL)
        pb.word(ctrl=CtrlOp.HALT)
        sim = CoreSimulator(pb.build())
        with pytest.raises(SimulationError, match="empty loop stack"):
            sim.run_frames(0, max_cycles=50)


class TestConditionalBranches:
    def branch_program(self, value):
        """Load ``value`` through the ALU (setting flags), then CJMP."""
        core = make_core(n_flags=2, conditionals=True)
        pb = ProgramBuilder(core)
        pb.const_p1(value, 0)
        # add(p0[0]=0, p1[0]=value): result = value, flags track it.
        pb.alu("add", a=0, b=0, dest=("rf_alu_p0", 1))
        return core, pb

    def run_flag_branch(self, value, flag):
        core, pb = self.branch_program(value)
        taken_target = 5
        pb.word(ctrl=CtrlOp.CJMP, arg=taken_target, flag=flag)
        pb.const_p1(111, 1)                  # fall-through path
        pb.word(ctrl=CtrlOp.HALT)
        assert len(pb.words) == taken_target
        pb.const_p1(222, 1)                  # taken path
        pb.word(ctrl=CtrlOp.HALT)
        sim = CoreSimulator(pb.build())
        sim.run_frames(0, max_cycles=50)
        return sim.registers["rf_alu_p1"][1]

    def test_negative_flag_taken(self):
        assert self.run_flag_branch(-5 & 0xFFFF, flag=0) == 222

    def test_negative_flag_not_taken(self):
        assert self.run_flag_branch(7, flag=0) == 111

    def test_zero_flag_taken(self):
        assert self.run_flag_branch(0, flag=1) == 222

    def test_zero_flag_not_taken(self):
        assert self.run_flag_branch(3, flag=1) == 111

    def test_unsupported_ctrl_op_rejected(self):
        core = make_core()   # no conditionals
        pb = ProgramBuilder(core)
        pb.word(ctrl=CtrlOp.CJMP, arg=0)
        pb.word(ctrl=CtrlOp.HALT)
        sim = CoreSimulator(pb.build())
        with pytest.raises(SimulationError, match="not supported"):
            sim.run_frames(0, max_cycles=10)


class TestMachineGuards:
    def test_stepping_halted_core(self):
        core = make_core()
        pb = ProgramBuilder(core)
        pb.word(ctrl=CtrlOp.HALT)
        sim = CoreSimulator(pb.build())
        sim.run_frames(0, max_cycles=10)
        with pytest.raises(SimulationError, match="halted"):
            sim.step()

    def test_trace_capture(self):
        core = make_core()
        pb = ProgramBuilder(core)
        pb.const_p1(3, 0)
        pb.word(ctrl=CtrlOp.HALT)
        sim = CoreSimulator(pb.build())
        sim.keep_trace = True
        sim.run_frames(0, max_cycles=10)
        assert len(sim.trace) == 2
        assert sim.trace[0].active == {"prg_c": "const"}
        assert "bus_prg_c" in sim.trace[0].bus_values
        assert sim.trace[0].ctrl is CtrlOp.CONT

    def test_register_write_without_bus_value(self):
        core = make_core()
        pb = ProgramBuilder(core)
        # Write-enable p1 with the constant-unit mux input selected,
        # but no constant issued: nothing matures on bus_prg_c.
        pb.word(**{
            "rf_alu_p1.wr_en": 1,
            "rf_alu_p1.wr_addr": 0,
            "rf_alu_p1.mux": mux_index(core, "rf_alu_p1", "bus_prg_c"),
        })
        pb.word(ctrl=CtrlOp.HALT)
        sim = CoreSimulator(pb.build())
        with pytest.raises(SimulationError, match="nothing matured"):
            sim.run_frames(0, max_cycles=10)
