"""End-to-end equivalence: compiled microcode vs. golden reference.

These are the strongest tests in the suite: an application is compiled
through the full pipeline (RT generation, conflict modelling,
scheduling, register allocation, instruction encoding) and the binary
is executed on the cycle-accurate core simulator.  Its output streams
must equal the reference interpreter's bit-exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Q15, Toolchain, audio_core, fir_core, tiny_core
from repro.lang import DfgBuilder, parse_source, run_reference

samples = st.lists(
    st.integers(min_value=Q15.min_value, max_value=Q15.max_value),
    min_size=4,
    max_size=24,
)

TREBLE = """
app treble;
param d1 = 0.40, d2 = -0.20, e1 = 0.30;
input IN; output out;
state u(2), v(2);
loop {
  u  = IN;
  x0 := u@2;
  m  := mlt(d2, x0);
  a  := pass(m);
  x2 := v@1;
  m  := mlt(e1, x2);
  a  := add(m, a);
  x1 := u@1;
  m  := mlt(d1, x1);
  rd := add_clip(m, a);
  v  = rd;
  out = rd;
}
"""


def assert_equivalent(application, core, inputs, n_frames=None, **options):
    dfg = parse_source(application) if isinstance(application, str) else application
    expected = run_reference(dfg, inputs, n_frames)
    program = Toolchain(core, cache=None, **options).compile(dfg)
    actual = program.run(inputs, n_frames)
    assert actual == expected
    return program


class TestTinyCore:
    def test_passthrough(self):
        b = DfgBuilder("pass")
        b.output("o", b.op("pass", b.input("i")))
        assert_equivalent(b.build(), tiny_core(), {"i": [1, -2, 3]})

    def test_add_constant(self):
        b = DfgBuilder("addk")
        k = b.param("k", 0.25)
        b.output("o", b.op("add", b.input("i"), k))
        assert_equivalent(b.build(), tiny_core(), {"i": [100, -100, 0]})

    def test_two_outputs_share_value(self):
        b = DfgBuilder("fan")
        x = b.op("pass", b.input("i"))
        b.output("o0", x)
        b.output("o1", b.op("sub", x, b.param("k", 0.5)))
        assert_equivalent(b.build(), tiny_core(), {"i": [5, 6, 7]})

    @given(samples)
    @settings(max_examples=10, deadline=None)
    def test_passthrough_property(self, xs):
        b = DfgBuilder("pass")
        b.output("o", b.op("pass", b.input("i")))
        assert_equivalent(b.build(), tiny_core(), {"i": xs})


class TestAudioCore:
    def test_treble_section(self):
        stimulus = [Q15.from_float(x) for x in
                    (0.1, -0.2, 0.5, 0.9, -0.9, 0.3, 0.0, 0.7, -0.5, 0.25)]
        program = assert_equivalent(TREBLE, audio_core(), {"IN": stimulus},
                                    budget=64)
        assert program.n_cycles <= 64

    def test_treble_long_run_state_wraps(self):
        # Longer than the delay-line window: circular addressing must hold.
        stimulus = [Q15.from_float(((i * 37) % 200 - 100) / 128) for i in range(50)]
        assert_equivalent(TREBLE, audio_core(), {"IN": stimulus}, budget=64)

    def test_stereo_two_inputs_one_ipb(self):
        source = """
        app stereo;
        param g = 0.5;
        input L, R;
        output oL, oR;
        loop {
          oL = mlt(g, L);
          oR = mlt(g, R);
        }
        """
        xs = [Q15.from_float(x) for x in (0.5, -0.5, 0.25, 0.125)]
        ys = [Q15.from_float(x) for x in (-0.25, 0.75, 0.0, -1.0)]
        assert_equivalent(source, audio_core(), {"L": xs, "R": ys}, budget=64)

    def test_clipping_saturates_in_hardware_too(self):
        source = """
        app cliptest;
        param big = 0.99;
        input i; output o;
        loop {
          m := mlt(big, i);
          o = add_clip(m, i);
        }
        """
        rail = [Q15.max_value, Q15.min_value, Q15.max_value]
        assert_equivalent(source, audio_core(), {"i": rail}, budget=64)

    @given(samples)
    @settings(max_examples=8, deadline=None)
    def test_treble_property(self, xs):
        assert_equivalent(TREBLE, audio_core(), {"IN": xs}, budget=64)


class TestFirCore:
    def test_three_tap_fir(self):
        source = """
        app fir3;
        param h0 = 0.25, h1 = 0.5, h2 = 0.25;
        input x; output y;
        state d(2);
        loop {
          d = x;
          m0 := mlt(h0, x);
          m1 := mlt(h1, d@1);
          acc := add(m0, m1);
          m2 := mlt(h2, d@2);
          y = add_clip(m2, acc);
        }
        """
        xs = [Q15.from_float(v) for v in (1.0, 0.0, 0.0, 0.0, 0.5, -0.5)]
        assert_equivalent(source, fir_core(), {"x": xs})

    def test_iir_feedback(self):
        source = """
        app iir1;
        param a = 0.5, b = 0.5;
        input x; output y;
        state s(1);
        loop {
          m0 := mlt(b, x);
          m1 := mlt(a, s@1);
          acc := add_clip(m0, m1);
          s = acc;
          y = acc;
        }
        """
        xs = [Q15.from_float(1.0)] + [0] * 6
        assert_equivalent(source, fir_core(), {"x": xs})


class TestCompiledArtifacts:
    def test_listing_is_printable(self):
        program = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(TREBLE)
        listing = program.binary.listing()
        assert "jump" in listing
        assert "mult.mult" in listing

    def test_instruction_width_is_fixed(self):
        program = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(TREBLE)
        assert all(0 <= w < (1 << program.binary.word_width)
                   for w in program.binary.words)

    def test_encode_decode_roundtrip(self):
        program = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(TREBLE)
        fmt = program.binary.format
        for word in program.binary.words:
            assert fmt.encode(fmt.decode(word)) == word

    def test_rom_words_quantised_coefficients(self):
        program = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(TREBLE)
        assert sorted(program.binary.rom_words) == sorted(
            Q15.from_float(c) for c in (0.40, -0.20, 0.30)
        )
