"""Tests for the DFG → source emitter, including semantic round-trips."""

import random

from hypothesis import given, settings

from repro.fixed import Q15
from repro.lang import emit_source, parse_source, run_reference
from tests.test_differential import random_application

TREBLE = """
app treble;
param d1 = 0.40, d2 = -0.20, e1 = 0.30;
input IN; output out;
state u(2), v(2);
loop {
  u  = IN;
  x0 := u@2;
  m  := mlt(d2, x0);
  a  := pass(m);
  x2 := v@1;
  m  := mlt(e1, x2);
  a  := add(m, a);
  x1 := u@1;
  m  := mlt(d1, x1);
  rd := add_clip(m, a);
  v  = rd;
  out = rd;
}
"""


def stimulus_for(dfg, n=8, seed=0):
    rng = random.Random(seed)
    return {
        port: [rng.randint(Q15.min_value, Q15.max_value) for _ in range(n)]
        for port in dfg.inputs
    }


class TestEmit:
    def test_treble_roundtrip_is_semantically_equal(self):
        original = parse_source(TREBLE)
        reparsed = parse_source(emit_source(original))
        stimulus = stimulus_for(original)
        assert run_reference(original, stimulus) == \
            run_reference(reparsed, stimulus)

    def test_structure_survives(self):
        original = parse_source(TREBLE)
        reparsed = parse_source(emit_source(original))
        assert reparsed.op_histogram() == original.op_histogram()
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert reparsed.states == original.states
        assert set(reparsed.params) == set(original.params)

    def test_emitted_text_shape(self):
        text = emit_source(parse_source(TREBLE))
        assert text.startswith("app treble;")
        assert "state u(2), v(2);" in text
        assert "loop {" in text and text.rstrip().endswith("}")
        assert ":= mult(" in text
        assert "u@2" in text

    def test_audio_application_emits_and_reparses(self):
        from repro.apps import audio_application

        original = audio_application()
        reparsed = parse_source(emit_source(original))
        stimulus = stimulus_for(original, n=6, seed=3)
        assert run_reference(original, stimulus) == \
            run_reference(reparsed, stimulus)

    @given(random_application(allow_states=True, allow_mult=True))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, dfg):
        reparsed = parse_source(emit_source(dfg))
        stimulus = stimulus_for(dfg, n=5, seed=1)
        assert run_reference(dfg, stimulus, 5) == \
            run_reference(reparsed, stimulus, 5)
