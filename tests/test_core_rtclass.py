"""Tests for RT classification and class grouping (paper, sect. 6.1/7)."""

import pytest

from repro.arch import AUDIO_CLASS_TABLE_13, audio_core
from repro.core import ClassTable, RTClass
from repro.errors import ClassificationError
from repro.lang import parse_source
from repro.rtgen import RT, ResourceUse, generate_rts

TREBLE = """
app treble;
param d1 = 0.40, d2 = -0.20, e1 = 0.30;
input IN; output out;
state u(2), v(2);
loop {
  u  = IN;
  x0 := u@2;
  m  := mlt(d2, x0);
  a  := pass(m);
  x2 := v@1;
  m  := mlt(e1, x2);
  a  := add(m, a);
  x1 := u@1;
  m  := mlt(d1, x1);
  rd := add_clip(m, a);
  v  = rd;
  out = rd;
}
"""


def make_rt(opu, operation):
    return RT(opu=opu, operation=operation, operands=(), destinations=(),
              uses=(ResourceUse(opu, operation),))


class TestClassTable:
    def test_figure5_style_classification(self):
        # Figure 5: acu_1 add->A pass->B addmod->C inca->D; ram_1 {read,write}->E
        table = ClassTable([
            RTClass("A", "acu_1", frozenset({"add"})),
            RTClass("B", "acu_1", frozenset({"pass"})),
            RTClass("C", "acu_1", frozenset({"addmod"})),
            RTClass("D", "acu_1", frozenset({"inca"})),
            RTClass("E", "ram_1", frozenset({"read", "write"})),
        ])
        assert table.classify(make_rt("acu_1", "add")).name == "A"
        assert table.classify(make_rt("acu_1", "addmod")).name == "C"
        assert table.classify(make_rt("ram_1", "read")).name == "E"
        assert table.classify(make_rt("ram_1", "write")).name == "E"

    def test_every_rt_in_exactly_one_class(self):
        with pytest.raises(ClassificationError, match="partition"):
            ClassTable([
                RTClass("A", "alu", frozenset({"add"})),
                RTClass("B", "alu", frozenset({"add", "sub"})),
            ])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ClassificationError, match="duplicate"):
            ClassTable([
                RTClass("A", "alu", frozenset({"add"})),
                RTClass("A", "alu", frozenset({"sub"})),
            ])

    def test_unclassifiable_rt_raises(self):
        table = ClassTable([RTClass("A", "alu", frozenset({"add"}))])
        with pytest.raises(ClassificationError, match="no RT class covers"):
            table.classify(make_rt("alu", "sub"))

    def test_pretty_usages(self):
        single = RTClass("A", "alu", frozenset({"add"}))
        multi = RTClass("E", "ram", frozenset({"read", "write"}))
        assert single.pretty_usages() == "add"
        assert multi.pretty_usages() == "{read, write}"


class TestAudioCoreClasses:
    def test_auto_classification_gives_13_classes(self):
        # Section 7: "The available register transfers result in 13 RT
        # classes."
        table = ClassTable.auto(audio_core())
        assert len(table) == 13

    def test_auto_matches_paper_table(self):
        table = ClassTable.auto(audio_core())
        pairs = {(cls.opu, usage) for cls in table for usage in cls.usages}
        expected = {(d.opu, u) for d in AUDIO_CLASS_TABLE_13 for u in d.usages}
        assert pairs == expected

    def test_grouping_reduces_to_9(self):
        # "Classes E and F can be combined in a single class X and
        # classes H, I, J and K can be combined to class Y so the number
        # of classes is reduced to 9."
        table = ClassTable.from_class_defs(AUDIO_CLASS_TABLE_13)
        grouped = table.group({
            "X": ("E", "F"),
            "Y": ("H", "I", "J", "K"),
        })
        assert len(grouped) == 9
        assert set(grouped.names) == {"A", "B", "C", "D", "X", "G", "Y", "L", "M"}
        assert grouped.by_name("X").usages == frozenset({"read", "write"})
        assert grouped.by_name("Y").usages == frozenset(
            {"add", "add_clip", "pass", "pass_clip"}
        )

    def test_grouping_across_opus_rejected(self):
        table = ClassTable.from_class_defs(AUDIO_CLASS_TABLE_13)
        with pytest.raises(ClassificationError, match="spans OPUs"):
            table.group({"Z": ("A", "B")})

    def test_grouping_unknown_class_rejected(self):
        table = ClassTable.from_class_defs(AUDIO_CLASS_TABLE_13)
        with pytest.raises(ClassificationError, match="unknown class"):
            table.group({"Z": ("E", "nope")})

    def test_class_in_two_groups_rejected(self):
        table = ClassTable.from_class_defs(AUDIO_CLASS_TABLE_13)
        with pytest.raises(ClassificationError, match="two groups"):
            table.group({"X": ("E", "F"), "Z": ("F", "E")})

    def test_core_table_classifies_generated_program(self):
        core = audio_core()
        program = generate_rts(parse_source(TREBLE), core)
        table = ClassTable.from_core(core)
        by_class = table.classify_program(program.rts)
        assert len(by_class["G"]) == 3      # three multiplies
        assert len(by_class["Y"]) == 3      # pass, add, add_clip
        assert len(by_class["X"]) == 5      # 3 reads + 2 writes
        assert len(by_class["D"]) == 6      # 5 addresses + fp advance
        assert len(by_class["A"]) == 1
        assert len(by_class["B"]) == 1
        assert len(by_class["L"]) == 3
        assert len(by_class["M"]) == 3
        for rt in program.rts:
            assert rt.rt_class is not None
