"""Property-based scheduler tests over randomised filter networks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import stress_application
from repro.arch import audio_core
from repro.core import ClassTable, InstructionSet, impose_instruction_set
from repro.errors import BudgetExceededError
from repro.rtgen import generate_rts
from repro.sched import (
    build_dependence_graph,
    compute_intervals,
    execution_intervals,
    list_schedule,
    vertical_schedule,
)

CORE = audio_core(ram_size=256, rom_size=128, rf_scale=4, program_size=512)


def graph_for(n_sections, seed):
    program = generate_rts(stress_application(n_sections, seed=seed), CORE)
    table = ClassTable.from_core(CORE)
    iset = InstructionSet.from_desired(table.names, CORE.instruction_types)
    program.rts = impose_instruction_set(program.rts, table, iset).rts
    return program, build_dependence_graph(program)


sizes = st.integers(min_value=1, max_value=6)
seeds = st.integers(min_value=0, max_value=10**6)


class TestSchedulerProperties:
    @given(sizes, seeds)
    @settings(max_examples=20, deadline=None)
    def test_schedules_always_validate(self, n, seed):
        _, graph = graph_for(n, seed)
        schedule = list_schedule(graph)
        schedule.validate(graph)

    @given(sizes, seeds)
    @settings(max_examples=15, deadline=None)
    def test_vliw_never_longer_than_vertical(self, n, seed):
        _, graph = graph_for(n, seed)
        assert list_schedule(graph).length <= vertical_schedule(graph).length

    @given(sizes, seeds)
    @settings(max_examples=15, deadline=None)
    def test_budget_monotone(self, n, seed):
        # If a budget B is feasible, every budget >= B is feasible and
        # yields the same (minimised) length.
        _, graph = graph_for(n, seed)
        base = list_schedule(graph)
        tight = list_schedule(graph, budget=base.length)
        loose = list_schedule(graph, budget=base.length + 16)
        assert tight.length <= base.length
        assert loose.length <= base.length

    @given(sizes, seeds)
    @settings(max_examples=15, deadline=None)
    def test_schedule_within_intervals(self, n, seed):
        _, graph = graph_for(n, seed)
        schedule = list_schedule(graph)
        intervals = execution_intervals(graph, schedule.length)
        for rt, cycle in schedule.cycle_of.items():
            assert intervals[rt].contains(cycle)

    @given(sizes, seeds)
    @settings(max_examples=10, deadline=None)
    def test_infeasible_budget_raises_cleanly(self, n, seed):
        _, graph = graph_for(n, seed)
        minimum = max(1, len(graph.rts) // 20)
        try:
            schedule = list_schedule(graph, budget=minimum)
            assert schedule.length <= minimum
        except BudgetExceededError as exc:
            assert exc.achieved > exc.budget == minimum

    @given(sizes, seeds)
    @settings(max_examples=10, deadline=None)
    def test_lifetimes_cover_all_reads(self, n, seed):
        program, graph = graph_for(n, seed)
        schedule = list_schedule(graph)
        intervals = compute_intervals(program, schedule)
        spans = {
            (rf, interval.value): interval
            for rf, file_intervals in intervals.items()
            for interval in file_intervals
        }
        for rt, cycle in schedule.cycle_of.items():
            for operand in rt.operands:
                if not operand.is_register:
                    continue
                interval = spans[(operand.register_file, operand.value)]
                assert interval.birth <= cycle <= interval.death
