"""Tests for intermediate architectures and design-space exploration."""

import pytest

from repro import Q15, compile_application, run_reference
from repro.apps import fir_application, stress_application
from repro.arch import (
    ARCHITECTURE_FAILURE,
    Allocation,
    ExplorationPoint,
    ExploreCache,
    explore,
    intermediate_architecture,
    pareto_front,
    required_operations,
    validate_datapath,
)
from repro.errors import ArchitectureError
from repro.lang import DfgBuilder


def app_set():
    return [
        stress_application(4, seed=1),
        fir_application([0.5, 0.25, 0.125]),
    ]


class TestIntermediateArchitecture:
    def test_is_style_valid(self):
        core = intermediate_architecture(app_set())
        validate_datapath(core.datapath)

    def test_covers_required_operations(self):
        dfgs = app_set()
        core = intermediate_architecture(dfgs)
        for operation in required_operations(dfgs):
            assert core.datapath.opus_supporting(operation), operation

    def test_fully_parallel_instruction_set(self):
        core = intermediate_architecture(app_set())
        assert len(core.instruction_types) == 1
        assert core.instruction_types[0] == frozenset(
            cd.name for cd in core.class_defs
        )

    def test_no_artificial_resources_needed(self):
        core = intermediate_architecture(app_set())
        compiled = compile_application(app_set()[1], core)
        assert compiled.conflict_model.cover == []

    def test_multi_unit_allocation(self):
        core = intermediate_architecture(
            app_set(), Allocation(n_mult=2, n_alu=2))
        names = set(core.datapath.opus)
        assert {"mult_0", "mult_1", "alu_0", "alu_1"} <= names

    def test_compiled_code_is_bit_exact(self):
        dfg = app_set()[1]
        core = intermediate_architecture([dfg])
        compiled = compile_application(dfg, core)
        xs = [Q15.from_float(v) for v in (0.7, -0.7, 0.35, 0.0)]
        assert compiled.run({"x": xs}) == run_reference(dfg, {"x": xs})

    def test_stateless_app_gets_no_ram(self):
        b = DfgBuilder("pure")
        b.output("o", b.op("pass", b.input("i")))
        core = intermediate_architecture([b.build()])
        assert not any(o.kind.value == "ram" for o in core.datapath.opus.values())

    def test_unknown_operation_rejected(self):
        b = DfgBuilder("weird")
        b.output("o", b.op("fft", b.input("i")))
        with pytest.raises(ArchitectureError, match="fft"):
            intermediate_architecture([b.build()])

    def test_bad_allocation_rejected(self):
        with pytest.raises(ArchitectureError, match="at least one"):
            Allocation(n_mult=0)


class TestExploration:
    def test_more_multipliers_never_hurt(self):
        dfgs = [stress_application(6, seed=2)]
        points = explore(dfgs, [Allocation(n_mult=1), Allocation(n_mult=2)])
        assert len(points) == 2
        one, two = points
        assert two.schedule_lengths["stress_6"] <= \
            one.schedule_lengths["stress_6"]

    def test_every_point_reports_all_apps(self):
        dfgs = app_set()
        points = explore(dfgs, [Allocation()])
        assert len(points) == 1
        assert set(points[0].schedule_lengths) == {d.name for d in dfgs}

    def test_worst_length(self):
        points = explore(app_set(), [Allocation()])
        point = points[0]
        assert point.worst_length == max(point.schedule_lengths.values())

    def test_budget_infeasibility_is_recorded_not_dropped(self):
        dfgs = [stress_application(6, seed=2)]
        points = explore(dfgs, [Allocation()], budget=2)
        assert len(points) == 1
        point = points[0]
        assert not point.feasible
        assert "BudgetExceededError" in point.failures["stress_6"]
        assert point.schedule_lengths == {}

    def test_worst_length_guard_on_empty_lengths(self):
        point = ExplorationPoint(
            allocation=Allocation(), schedule_lengths={}, n_opus=9,
            failures={"fir8": "BudgetExceededError: ..."},
        )
        with pytest.raises(ArchitectureError, match="no schedule lengths"):
            point.worst_length

    def test_architecture_failure_recorded(self):
        b = DfgBuilder("weird")
        b.output("o", b.op("fft", b.input("i")))
        points = explore([b.build()], [Allocation()])
        assert not points[0].feasible
        assert "fft" in points[0].failures[ARCHITECTURE_FAILURE]

    def test_points_preserve_allocation_order(self):
        dfgs = [stress_application(4, seed=1)]
        allocations = [Allocation(n_alu=a) for a in (2, 1, 3)]
        points = explore(dfgs, allocations)
        assert [p.allocation for p in points] == allocations

    def test_machine_independent_optimization_runs_once_per_dfg(
            self, monkeypatch):
        import importlib
        explore_module = importlib.import_module("repro.arch.explore")
        calls = []
        real = explore_module.optimize_machine_independent

        def counting(dfg, level=1, fmt=None):
            calls.append(dfg.name)
            return real(dfg, level=level, fmt=fmt)

        monkeypatch.setattr(explore_module,
                            "optimize_machine_independent", counting)
        dfgs = app_set()
        allocations = [Allocation(n_mult=m, n_alu=a)
                       for m in (1, 2) for a in (1, 2)]
        explore_module.explore(dfgs, allocations, opt_level=1)
        assert sorted(calls) == sorted(d.name for d in dfgs)

    def test_parallel_matches_sequential(self):
        dfgs = app_set()
        allocations = [Allocation(n_mult=m, n_alu=a)
                       for m in (1, 2) for a in (1, 2)]
        sequential = explore(dfgs, allocations)
        parallel = explore(dfgs, allocations, jobs=2)
        assert [p.schedule_lengths for p in parallel] == \
            [p.schedule_lengths for p in sequential]
        assert [p.n_opus for p in parallel] == [p.n_opus for p in sequential]

    def test_cache_reuses_candidates_across_sweeps(self):
        dfgs = [stress_application(4, seed=1)]
        cache = ExploreCache()
        first = explore(dfgs, [Allocation(), Allocation(n_alu=2)],
                        cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        second = explore(dfgs, [Allocation(n_alu=2), Allocation(n_alu=3)],
                         cache=cache)
        assert cache.hits == 1
        assert second[0].schedule_lengths == first[1].schedule_lengths

    def test_opt_level_shortens_or_keeps_lengths(self):
        dfgs = [stress_application(6, seed=2)]
        unoptimized = explore(dfgs, [Allocation()], opt_level=0)
        optimized = explore(dfgs, [Allocation()], opt_level=2)
        assert optimized[0].schedule_lengths["stress_6"] <= \
            unoptimized[0].schedule_lengths["stress_6"]


class TestParetoFront:
    @staticmethod
    def point(length, n_opus, feasible=True):
        return ExplorationPoint(
            allocation=Allocation(),
            schedule_lengths={"a": length} if feasible else {},
            n_opus=n_opus,
            failures={} if feasible else {"a": "RoutingError: ..."},
        )

    def test_dominated_points_are_excluded(self):
        fast_big = self.point(10, 12)
        slow_small = self.point(20, 8)
        dominated = self.point(20, 12)
        front = pareto_front([fast_big, slow_small, dominated])
        assert front == [fast_big, slow_small]

    def test_infeasible_points_never_on_front(self):
        feasible = self.point(10, 12)
        infeasible = self.point(0, 1, feasible=False)
        assert pareto_front([feasible, infeasible]) == [feasible]

    def test_explore_front_is_nonempty(self):
        points = explore(app_set(), [Allocation(), Allocation(n_alu=2)])
        front = pareto_front(points)
        assert front
        assert all(p.feasible for p in front)


class TestDiskBackedSweeps:
    """Warm sweeps across processes: the candidate memo persists."""

    def test_warm_sweep_hits_disk(self, tmp_path):
        from repro.pipeline import DiskCache

        dfgs = app_set()
        allocations = [Allocation(), Allocation(n_alu=2)]
        cold = explore(dfgs, allocations, cache_dir=str(tmp_path))

        # A fresh cache over the same directory is what a new process
        # starts with: every candidate restores from disk.
        warm_cache = ExploreCache(disk=DiskCache(tmp_path))
        warm = explore(dfgs, allocations, cache=warm_cache)
        assert warm_cache.disk_hits == len(allocations)
        assert warm_cache.misses == 0
        assert [p.schedule_lengths for p in warm] == \
            [p.schedule_lengths for p in cold]
        assert [p.n_opus for p in warm] == [p.n_opus for p in cold]

    def test_corrupt_candidate_entry_is_recomputed(self, tmp_path):
        from repro.pipeline import DiskCache

        dfgs = app_set()
        allocations = [Allocation()]
        explore(dfgs, allocations, cache_dir=str(tmp_path))
        disk = DiskCache(tmp_path)
        for path in disk.objects.glob("*/*.rpdc"):
            path.write_bytes(b"junk")
        warm_cache = ExploreCache(disk=DiskCache(tmp_path))
        warm = explore(dfgs, allocations, cache=warm_cache)
        assert warm_cache.disk_hits == 0
        assert warm[0].feasible

    def test_failures_persist_too(self, tmp_path):
        dfgs = app_set()
        allocations = [Allocation()]
        cold = explore(dfgs, allocations, budget=1, cache_dir=str(tmp_path))
        warm = explore(dfgs, allocations, budget=1, cache_dir=str(tmp_path))
        assert not cold[0].feasible
        assert warm[0].failures == cold[0].failures
