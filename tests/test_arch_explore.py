"""Tests for intermediate architectures and design-space exploration."""

import pytest

from repro import Q15, compile_application, run_reference
from repro.apps import fir_application, stress_application
from repro.arch import (
    Allocation,
    explore,
    intermediate_architecture,
    required_operations,
    validate_datapath,
)
from repro.errors import ArchitectureError
from repro.lang import DfgBuilder


def app_set():
    return [
        stress_application(4, seed=1),
        fir_application([0.5, 0.25, 0.125]),
    ]


class TestIntermediateArchitecture:
    def test_is_style_valid(self):
        core = intermediate_architecture(app_set())
        validate_datapath(core.datapath)

    def test_covers_required_operations(self):
        dfgs = app_set()
        core = intermediate_architecture(dfgs)
        for operation in required_operations(dfgs):
            assert core.datapath.opus_supporting(operation), operation

    def test_fully_parallel_instruction_set(self):
        core = intermediate_architecture(app_set())
        assert len(core.instruction_types) == 1
        assert core.instruction_types[0] == frozenset(
            cd.name for cd in core.class_defs
        )

    def test_no_artificial_resources_needed(self):
        core = intermediate_architecture(app_set())
        compiled = compile_application(app_set()[1], core)
        assert compiled.conflict_model.cover == []

    def test_multi_unit_allocation(self):
        core = intermediate_architecture(
            app_set(), Allocation(n_mult=2, n_alu=2))
        names = set(core.datapath.opus)
        assert {"mult_0", "mult_1", "alu_0", "alu_1"} <= names

    def test_compiled_code_is_bit_exact(self):
        dfg = app_set()[1]
        core = intermediate_architecture([dfg])
        compiled = compile_application(dfg, core)
        xs = [Q15.from_float(v) for v in (0.7, -0.7, 0.35, 0.0)]
        assert compiled.run({"x": xs}) == run_reference(dfg, {"x": xs})

    def test_stateless_app_gets_no_ram(self):
        b = DfgBuilder("pure")
        b.output("o", b.op("pass", b.input("i")))
        core = intermediate_architecture([b.build()])
        assert not any(o.kind.value == "ram" for o in core.datapath.opus.values())

    def test_unknown_operation_rejected(self):
        b = DfgBuilder("weird")
        b.output("o", b.op("fft", b.input("i")))
        with pytest.raises(ArchitectureError, match="fft"):
            intermediate_architecture([b.build()])

    def test_bad_allocation_rejected(self):
        with pytest.raises(ArchitectureError, match="at least one"):
            Allocation(n_mult=0)


class TestExploration:
    def test_more_multipliers_never_hurt(self):
        dfgs = [stress_application(6, seed=2)]
        points = explore(dfgs, [Allocation(n_mult=1), Allocation(n_mult=2)])
        assert len(points) == 2
        one, two = points
        assert two.schedule_lengths["stress_6"] <= \
            one.schedule_lengths["stress_6"]

    def test_every_point_reports_all_apps(self):
        dfgs = app_set()
        points = explore(dfgs, [Allocation()])
        assert len(points) == 1
        assert set(points[0].schedule_lengths) == {d.name for d in dfgs}

    def test_worst_length(self):
        points = explore(app_set(), [Allocation()])
        point = points[0]
        assert point.worst_length == max(point.schedule_lengths.values())

    def test_budget_filters_infeasible(self):
        dfgs = [stress_application(6, seed=2)]
        points = explore(dfgs, [Allocation()], budget=2)
        assert points == []
