"""Tests for intermediate architectures and design-space exploration."""

import pytest

from repro import Q15, Toolchain, run_reference
from repro.apps import fir_application, stress_application
from repro.arch import (
    ARCHITECTURE_FAILURE,
    MERGE_VARIANTS,
    PARETO_AXES,
    STORAGE_AXES,
    Allocation,
    ExplorationPoint,
    ExploreCache,
    SweepSpec,
    explore,
    explore_refined,
    intermediate_architecture,
    merge_spec_for,
    pareto_axes,
    pareto_front,
    required_operations,
    validate_datapath,
)
from repro.errors import ArchitectureError
from repro.lang import DfgBuilder


def app_set():
    return [
        stress_application(4, seed=1),
        fir_application([0.5, 0.25, 0.125]),
    ]


class TestIntermediateArchitecture:
    def test_is_style_valid(self):
        core = intermediate_architecture(app_set())
        validate_datapath(core.datapath)

    def test_covers_required_operations(self):
        dfgs = app_set()
        core = intermediate_architecture(dfgs)
        for operation in required_operations(dfgs):
            assert core.datapath.opus_supporting(operation), operation

    def test_fully_parallel_instruction_set(self):
        core = intermediate_architecture(app_set())
        assert len(core.instruction_types) == 1
        assert core.instruction_types[0] == frozenset(
            cd.name for cd in core.class_defs
        )

    def test_no_artificial_resources_needed(self):
        core = intermediate_architecture(app_set())
        compiled = Toolchain(core, cache=None).compile(app_set()[1])
        assert compiled.conflict_model.cover == []

    def test_multi_unit_allocation(self):
        core = intermediate_architecture(
            app_set(), Allocation(n_mult=2, n_alu=2))
        names = set(core.datapath.opus)
        assert {"mult_0", "mult_1", "alu_0", "alu_1"} <= names

    def test_compiled_code_is_bit_exact(self):
        dfg = app_set()[1]
        core = intermediate_architecture([dfg])
        compiled = Toolchain(core, cache=None).compile(dfg)
        xs = [Q15.from_float(v) for v in (0.7, -0.7, 0.35, 0.0)]
        assert compiled.run({"x": xs}) == run_reference(dfg, {"x": xs})

    def test_stateless_app_gets_no_ram(self):
        b = DfgBuilder("pure")
        b.output("o", b.op("pass", b.input("i")))
        core = intermediate_architecture([b.build()])
        assert not any(o.kind.value == "ram" for o in core.datapath.opus.values())

    def test_unknown_operation_rejected(self):
        b = DfgBuilder("weird")
        b.output("o", b.op("fft", b.input("i")))
        with pytest.raises(ArchitectureError, match="fft"):
            intermediate_architecture([b.build()])

    def test_bad_allocation_rejected(self):
        with pytest.raises(ArchitectureError, match="at least one"):
            Allocation(n_mult=0)

    def test_zero_storage_sizes_rejected(self):
        for bad in (dict(rf_size=0), dict(ram_size=0), dict(rom_size=-4)):
            with pytest.raises(ArchitectureError, match="sizes >= 1"):
                Allocation(**bad)

    def test_unknown_merge_variant_rejected(self):
        with pytest.raises(ArchitectureError, match="unknown merge variant"):
            Allocation(merge_variant="fuse-everything")

    def test_ram_and_rom_sizes_reach_the_datapath(self):
        core = intermediate_architecture(
            app_set(), Allocation(ram_size=64, rom_size=32))
        sizes = {opu.name: opu.memory_size
                 for opu in core.datapath.opus.values()
                 if opu.memory_size is not None}
        assert sizes["ram"] == 64
        assert sizes["rom"] == 32


class TestSweepSpec:
    def test_allocations_cross_product(self):
        spec = SweepSpec(n_mults=(1, 2), n_alus=(1, 2), rf_sizes=(8, 16))
        allocations = spec.allocations()
        assert len(allocations) == spec.size == 8
        assert len(set(a.astuple() for a in allocations)) == 8
        assert allocations[0] == Allocation(n_mult=1, n_alu=1, rf_size=8)

    def test_axes_sorted_and_deduplicated(self):
        spec = SweepSpec(n_mults=(2, 1, 2), rf_sizes=(16, 8, 8))
        assert spec.n_mults == (1, 2)
        assert spec.rf_sizes == (8, 16)

    def test_empty_or_invalid_axis_rejected(self):
        with pytest.raises(ArchitectureError, match="empty"):
            SweepSpec(n_alus=())
        with pytest.raises(ArchitectureError, match="values < 1"):
            SweepSpec(rf_sizes=(0, 8))
        with pytest.raises(ArchitectureError, match="unknown merge variant"):
            SweepSpec(merge_variants=("none", "zap"))

    def test_coarse_thins_every_other_value(self):
        spec = SweepSpec(n_alus=(1, 2, 3, 4), rf_sizes=(4, 8, 12, 16, 20))
        coarse = spec.coarse()
        assert coarse.n_alus == (1, 3, 4)         # endpoints always kept
        assert coarse.rf_sizes == (4, 12, 20)
        assert coarse.n_mults == spec.n_mults     # short axes untouched

    def test_coarse_keeps_merge_variants_whole(self):
        spec = SweepSpec(merge_variants=("none", "alu-operands"))
        assert spec.coarse().merge_variants == ("none", "alu-operands")

    def test_neighborhood_covers_the_coarse_cell(self):
        spec = SweepSpec(rf_sizes=(4, 8, 12, 16, 20))
        # Coarse grid is (4, 12, 20); the cell around 12 is 8..16.
        cell = spec.neighborhood(Allocation(rf_size=12))
        assert sorted(a.rf_size for a in cell) == [8, 12, 16]
        edge = spec.neighborhood(Allocation(rf_size=4))
        assert sorted(a.rf_size for a in edge) == [4, 8]

    def test_neighborhood_holds_merge_variant_fixed(self):
        spec = SweepSpec(n_alus=(1, 2, 3),
                         merge_variants=("none", "alu-operands"))
        cell = spec.neighborhood(Allocation(n_alu=1,
                                            merge_variant="alu-operands"))
        assert {a.merge_variant for a in cell} == {"alu-operands"}


class TestMergeVariants:
    def test_every_variant_builds_or_degenerates(self):
        core = intermediate_architecture(app_set())
        for variant in MERGE_VARIANTS:
            spec = merge_spec_for(variant, core)
            if spec is not None:
                spec.validate(core.datapath)

    def test_unknown_variant_raises(self):
        core = intermediate_architecture(app_set())
        with pytest.raises(ArchitectureError, match="unknown merge variant"):
            merge_spec_for("zap", core)

    def test_variant_without_targets_degenerates_to_none(self):
        b = DfgBuilder("pure")
        b.output("o", b.op("pass", b.input("i")))
        core = intermediate_architecture([b.build()])
        assert merge_spec_for("mult-operands", core) is None

    def test_merged_candidate_trades_length_for_register_files(self):
        dfgs = app_set()
        plain, merged = explore(dfgs, [
            Allocation(), Allocation(merge_variant="alu-operands"),
        ])
        assert plain.feasible and merged.feasible
        assert merged.n_rfs < plain.n_rfs
        assert merged.n_opus == plain.n_opus
        assert merged.storage_words == plain.storage_words
        assert merged.worst_length >= plain.worst_length

    def test_points_carry_storage_metrics(self):
        point = explore(app_set(), [Allocation(rf_size=8)])[0]
        assert point.n_rfs > 0
        assert point.storage_words > 0


class TestExploration:
    def test_more_multipliers_never_hurt(self):
        dfgs = [stress_application(6, seed=2)]
        points = explore(dfgs, [Allocation(n_mult=1), Allocation(n_mult=2)])
        assert len(points) == 2
        one, two = points
        assert two.schedule_lengths["stress_6"] <= \
            one.schedule_lengths["stress_6"]

    def test_every_point_reports_all_apps(self):
        dfgs = app_set()
        points = explore(dfgs, [Allocation()])
        assert len(points) == 1
        assert set(points[0].schedule_lengths) == {d.name for d in dfgs}

    def test_worst_length(self):
        points = explore(app_set(), [Allocation()])
        point = points[0]
        assert point.worst_length == max(point.schedule_lengths.values())

    def test_budget_infeasibility_is_recorded_not_dropped(self):
        dfgs = [stress_application(6, seed=2)]
        points = explore(dfgs, [Allocation()], budget=2)
        assert len(points) == 1
        point = points[0]
        assert not point.feasible
        assert "BudgetExceededError" in point.failures["stress_6"]
        assert point.schedule_lengths == {}

    def test_worst_length_guard_on_empty_lengths(self):
        point = ExplorationPoint(
            allocation=Allocation(), schedule_lengths={}, n_opus=9,
            failures={"fir8": "BudgetExceededError: ..."},
        )
        with pytest.raises(ArchitectureError, match="no schedule lengths"):
            point.worst_length

    def test_architecture_failure_recorded(self):
        b = DfgBuilder("weird")
        b.output("o", b.op("fft", b.input("i")))
        points = explore([b.build()], [Allocation()])
        assert not points[0].feasible
        assert "fft" in points[0].failures[ARCHITECTURE_FAILURE]

    def test_points_preserve_allocation_order(self):
        dfgs = [stress_application(4, seed=1)]
        allocations = [Allocation(n_alu=a) for a in (2, 1, 3)]
        points = explore(dfgs, allocations)
        assert [p.allocation for p in points] == allocations

    def test_machine_independent_optimization_runs_once_per_dfg(
            self, monkeypatch):
        import importlib
        explore_module = importlib.import_module("repro.arch.explore")
        calls = []
        real = explore_module.optimize_machine_independent

        def counting(dfg, level=1, fmt=None):
            calls.append(dfg.name)
            return real(dfg, level=level, fmt=fmt)

        monkeypatch.setattr(explore_module,
                            "optimize_machine_independent", counting)
        dfgs = app_set()
        allocations = [Allocation(n_mult=m, n_alu=a)
                       for m in (1, 2) for a in (1, 2)]
        explore_module.explore(dfgs, allocations, opt_level=1)
        assert sorted(calls) == sorted(d.name for d in dfgs)

    def test_parallel_matches_sequential(self):
        """jobs=2 must agree with jobs=None point for point — including
        on the storage axes and with a merge variant in the sweep (the
        workers receive the DFGs via the pool initializer, not per
        task)."""
        dfgs = app_set()
        allocations = SweepSpec(
            n_mults=(1, 2), rf_sizes=(8, 16),
            merge_variants=("none", "alu-operands"),
        ).allocations()
        sequential = explore(dfgs, allocations)
        parallel = explore(dfgs, allocations, jobs=2)
        assert [p.schedule_lengths for p in parallel] == \
            [p.schedule_lengths for p in sequential]
        assert [p.n_opus for p in parallel] == [p.n_opus for p in sequential]
        assert [p.n_rfs for p in parallel] == [p.n_rfs for p in sequential]
        assert [p.storage_words for p in parallel] == \
            [p.storage_words for p in sequential]

    def test_degenerate_variant_is_not_recompiled(self, monkeypatch):
        """A merge variant with nothing to merge on the application set
        canonicalizes to 'none' and shares that candidate's evaluation
        instead of compiling identical feedback twice."""
        import importlib
        explore_module = importlib.import_module("repro.arch.explore")
        calls = []
        real = explore_module._evaluate_candidate

        def counting(dfgs, allocation, options):
            calls.append(allocation.astuple())
            return real(dfgs, allocation, options)

        monkeypatch.setattr(explore_module, "_evaluate_candidate", counting)
        b = DfgBuilder("pure")
        b.output("o", b.op("pass", b.input("i")))
        points = explore_module.explore(
            [b.build()],
            [Allocation(), Allocation(merge_variant="mult-operands")],
        )
        assert len(calls) == 1
        assert points[1].allocation.merge_variant == "none"
        assert points[0].schedule_lengths == points[1].schedule_lengths

    def test_cache_reuses_candidates_across_sweeps(self):
        dfgs = [stress_application(4, seed=1)]
        cache = ExploreCache()
        first = explore(dfgs, [Allocation(), Allocation(n_alu=2)],
                        cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        second = explore(dfgs, [Allocation(n_alu=2), Allocation(n_alu=3)],
                         cache=cache)
        assert cache.hits == 1
        assert second[0].schedule_lengths == first[1].schedule_lengths

    def test_opt_level_shortens_or_keeps_lengths(self):
        dfgs = [stress_application(6, seed=2)]
        unoptimized = explore(dfgs, [Allocation()], opt_level=0)
        optimized = explore(dfgs, [Allocation()], opt_level=2)
        assert optimized[0].schedule_lengths["stress_6"] <= \
            unoptimized[0].schedule_lengths["stress_6"]


class TestRefinement:
    """Coarse-to-fine sweeps: fewer evaluations, same Pareto front."""

    @staticmethod
    def spec():
        return SweepSpec(n_mults=(1, 2), n_alus=(1, 2, 3),
                         rf_sizes=(8, 12, 16))

    @staticmethod
    def front_keys(points):
        return sorted(p.allocation.astuple() for p in points)

    def test_refined_front_matches_full_grid(self):
        dfgs = app_set()
        spec = self.spec()
        axes = pareto_axes(spec)
        full_front = pareto_front(explore(dfgs, spec.allocations()),
                                  axes=axes)
        refined = explore_refined(dfgs, spec)
        assert refined.axes == axes
        assert refined.n_evaluated < spec.size
        assert self.front_keys(refined.front) == self.front_keys(full_front)

    def test_refined_with_budget_matches_full_grid(self):
        dfgs = [stress_application(6, seed=2)]
        spec = self.spec()
        axes = pareto_axes(spec)
        full_front = pareto_front(
            explore(dfgs, spec.allocations(), budget=64), axes=axes)
        refined = explore_refined(dfgs, spec, budget=64)
        assert self.front_keys(refined.front) == self.front_keys(full_front)

    def test_refinement_optimizes_each_application_once(self, monkeypatch):
        """Both phases reuse one machine-independent optimization of
        the application set — never one per explore() call."""
        import importlib
        explore_module = importlib.import_module("repro.arch.explore")
        calls = []
        real = explore_module.optimize_machine_independent

        def counting(dfg, level=1, fmt=None):
            calls.append(dfg.name)
            return real(dfg, level=level, fmt=fmt)

        monkeypatch.setattr(explore_module,
                            "optimize_machine_independent", counting)
        dfgs = app_set()
        explore_module.explore_refined(dfgs, self.spec())
        assert sorted(calls) == sorted(d.name for d in dfgs)

    def test_phases_share_one_cache(self):
        cache = ExploreCache()
        refined = explore_refined(app_set(), self.spec(), cache=cache)
        # Every evaluated candidate was compiled exactly once: the fine
        # phase never re-evaluates a coarse point.
        assert cache.misses == refined.n_evaluated
        assert len(cache) == refined.n_evaluated

    def test_bookkeeping_is_consistent(self):
        refined = explore_refined(app_set(), self.spec())
        assert refined.n_grid == self.spec().size
        assert refined.n_coarse + refined.n_refined == len(refined.points)
        assert refined.n_coarse == self.spec().coarse().size

    def test_degenerate_variant_sweep_never_duplicates_points(self):
        """Regression: refinement dedup must key on *canonical*
        allocations — a degenerate merge variant used to re-add its own
        coarse points as fine ones, inflating n_evaluated past the grid
        and duplicating front rows."""
        b = DfgBuilder("pure")
        b.output("o", b.op("pass", b.input("i")))
        spec = SweepSpec(n_alus=(1, 2, 3),
                         merge_variants=("mult-operands",))
        refined = explore_refined([b.build()], spec)
        assert refined.n_evaluated <= spec.size
        tuples = [p.allocation.astuple() for p in refined.points]
        assert len(tuples) == len(set(tuples))

    def test_single_point_grid_refines_to_itself(self):
        refined = explore_refined(app_set(), SweepSpec())
        assert refined.n_coarse == 1
        assert refined.n_refined == 0
        assert len(refined.front) == 1


class TestParetoFront:
    @staticmethod
    def point(length, n_opus, feasible=True):
        return ExplorationPoint(
            allocation=Allocation(),
            schedule_lengths={"a": length} if feasible else {},
            n_opus=n_opus,
            failures={} if feasible else {"a": "RoutingError: ..."},
        )

    def test_dominated_points_are_excluded(self):
        fast_big = self.point(10, 12)
        slow_small = self.point(20, 8)
        dominated = self.point(20, 12)
        front = pareto_front([fast_big, slow_small, dominated])
        assert front == [fast_big, slow_small]

    def test_infeasible_points_never_on_front(self):
        feasible = self.point(10, 12)
        infeasible = self.point(0, 1, feasible=False)
        assert pareto_front([feasible, infeasible]) == [feasible]

    def test_explore_front_is_nonempty(self):
        points = explore(app_set(), [Allocation(), Allocation(n_alu=2)])
        front = pareto_front(points)
        assert front
        assert all(p.feasible for p in front)

    def test_storage_axes_keep_smaller_register_files(self):
        """On the storage axes a same-speed candidate with smaller
        register files survives the front; on the classic pair it is
        invisible."""
        small = ExplorationPoint(
            allocation=Allocation(rf_size=8),
            schedule_lengths={"a": 10}, n_opus=8, n_rfs=10,
            storage_words=300)
        big = ExplorationPoint(
            allocation=Allocation(rf_size=16),
            schedule_lengths={"a": 10}, n_opus=8, n_rfs=10,
            storage_words=400)
        assert pareto_front([small, big], axes=STORAGE_AXES) == [small]
        assert pareto_front([small, big], axes=PARETO_AXES) == [small, big]

    def test_pareto_axes_picks_storage_for_multi_dim_sweeps(self):
        assert pareto_axes(SweepSpec(n_mults=(1, 2))) == PARETO_AXES
        assert pareto_axes(SweepSpec(rf_sizes=(8, 16))) == STORAGE_AXES
        assert pareto_axes(
            SweepSpec(merge_variants=("none", "alu-operands"))
        ) == STORAGE_AXES


class TestDiskBackedSweeps:
    """Warm sweeps across processes: the candidate memo persists."""

    def test_warm_sweep_hits_disk(self, tmp_path):
        from repro.pipeline import DiskCache

        dfgs = app_set()
        allocations = [Allocation(), Allocation(n_alu=2)]
        cold = explore(dfgs, allocations, cache_dir=str(tmp_path))

        # A fresh cache over the same directory is what a new process
        # starts with: every candidate restores from disk.
        warm_cache = ExploreCache(disk=DiskCache(tmp_path))
        warm = explore(dfgs, allocations, cache=warm_cache)
        assert warm_cache.disk_hits == len(allocations)
        assert warm_cache.misses == 0
        assert [p.schedule_lengths for p in warm] == \
            [p.schedule_lengths for p in cold]
        assert [p.n_opus for p in warm] == [p.n_opus for p in cold]

    def test_corrupt_candidate_entry_is_recomputed(self, tmp_path):
        from repro.pipeline import DiskCache

        dfgs = app_set()
        allocations = [Allocation()]
        explore(dfgs, allocations, cache_dir=str(tmp_path))
        disk = DiskCache(tmp_path)
        for path in disk.objects.glob("*/*.rpdc"):
            path.write_bytes(b"junk")
        warm_cache = ExploreCache(disk=DiskCache(tmp_path))
        warm = explore(dfgs, allocations, cache=warm_cache)
        assert warm_cache.disk_hits == 0
        assert warm[0].feasible

    def test_failures_persist_too(self, tmp_path):
        dfgs = app_set()
        allocations = [Allocation()]
        cold = explore(dfgs, allocations, budget=1, cache_dir=str(tmp_path))
        warm = explore(dfgs, allocations, budget=1, cache_dir=str(tmp_path))
        assert not cold[0].feasible
        assert warm[0].failures == cold[0].failures


class TestExploreOptionValidation:
    """An out-of-range budget is a caller error at the API boundary —
    raised once with a clear message, never per-candidate noise or an
    exception escaping a jobs= pool worker mid-sweep."""

    def test_bad_budget_rejected_early(self):
        from repro.errors import OptionsError

        dfgs = app_set()
        with pytest.raises(OptionsError, match="budget must be >= 1"):
            explore(dfgs, [Allocation()], budget=0)
        with pytest.raises(OptionsError, match="budget must be >= 1"):
            explore_refined(dfgs, SweepSpec(), budget=-2)

    def test_mixing_options_and_legacy_kwargs_is_refused(self):
        from repro import CompileOptions
        from repro.errors import OptionsError

        dfgs = app_set()[:1]
        with pytest.raises(OptionsError, match="not both"):
            explore(dfgs, [Allocation()], budget=32,
                    options=CompileOptions())
        with pytest.raises(OptionsError, match="not both"):
            explore_refined(dfgs, SweepSpec(), opt_level=2,
                            options=CompileOptions())

    def test_options_object_supplies_budget_and_opt(self):
        from repro import CompileOptions

        dfgs = app_set()[:1]
        legacy = explore(dfgs, [Allocation()], budget=32, opt_level=2)
        typed = explore(dfgs, [Allocation()],
                        options=CompileOptions(budget=32, opt=2))
        assert [p.schedule_lengths for p in legacy] == \
            [p.schedule_lengths for p in typed]


class TestExploreHonorsBaseOptions:
    """The base CompileOptions shapes candidate evaluation — cover,
    restarts and seed take effect and key the candidate memo, so sweeps
    differing in them never share cache entries."""

    def test_cover_and_seed_key_the_memo(self):
        from repro import CompileOptions
        from repro.arch import ExploreCache

        dfgs = app_set()[:1]
        cache = ExploreCache()
        explore(dfgs, [Allocation()],
                options=CompileOptions(cover="greedy"), cache=cache)
        explore(dfgs, [Allocation()],
                options=CompileOptions(cover="exact"), cache=cache)
        explore(dfgs, [Allocation()],
                options=CompileOptions(seed=99, restarts=2), cache=cache)
        assert cache.misses == 3 and cache.hits == 0
        # An identical re-sweep is served from the memo.
        explore(dfgs, [Allocation()],
                options=CompileOptions(cover="exact"), cache=cache)
        assert cache.hits == 1

    def test_restarts_and_seed_reach_the_scheduler(self, monkeypatch):
        from repro import CompileOptions
        import repro.pipeline.stages as stages

        seen = {}
        real = stages.list_schedule

        def spying(graph, budget=None, restarts=0, seed=0):
            seen["restarts"], seen["seed"] = restarts, seed
            return real(graph, budget=budget, restarts=restarts, seed=seed)

        monkeypatch.setattr(stages, "list_schedule", spying)
        explore(app_set()[:1], [Allocation()],
                options=CompileOptions(restarts=3, seed=11))
        assert seen == {"restarts": 3, "seed": 11}
