"""Tests for the seeded random-DFG generator (repro.gen.generator)."""

from __future__ import annotations

import pytest

from repro import Q15, run_reference, tiny_core
from repro.errors import ReproError
from repro.gen import (
    GenSpec,
    case_seed,
    generate_corpus,
    generate_dfg,
    op_vocabulary,
)
from repro.lang.dfg import NodeKind
from repro.lang.emit import emit_source
from repro.lang.parser import parse_source

from stream_helpers import random_streams


class TestVocabulary:
    def test_fir_core_offers_mult_and_sub(self):
        names = dict(op_vocabulary("fir"))
        assert names["mult"] == 2
        assert names["sub"] == 2
        assert names["pass"] == 1

    def test_audio_core_lacks_sub(self):
        names = dict(op_vocabulary("audio"))
        assert "sub" not in names
        assert "add_clip" in names

    def test_registered_core_resolves(self, registered_core):
        registered_core("gen-test-tiny", tiny_core)
        assert op_vocabulary("gen-test-tiny") == op_vocabulary(tiny_core())

    def test_vocabulary_is_sorted_and_deterministic(self):
        first, second = op_vocabulary("fir"), op_vocabulary("fir")
        assert first == second == tuple(sorted(first))


class TestGenerateDfg:
    def test_pure_function_of_spec_and_seed(self):
        spec = GenSpec()
        a = emit_source(generate_dfg(spec, 42))
        b = emit_source(generate_dfg(spec, 42))
        assert a == b

    def test_different_seeds_differ(self):
        spec = GenSpec()
        sources = {emit_source(generate_dfg(spec, seed))
                   for seed in range(8)}
        assert len(sources) > 1

    @pytest.mark.parametrize("seed", range(12))
    def test_always_well_formed_with_reference_semantics(self, seed):
        spec = GenSpec()
        dfg = generate_dfg(spec, seed)
        dfg.validate()
        stimulus = random_streams(dfg, n=5, seed=seed)
        outputs = run_reference(dfg, stimulus, 5, fmt=Q15)
        assert set(outputs) == set(dfg.outputs)
        assert all(len(stream) == 5 for stream in outputs.values())

    @pytest.mark.parametrize("seed", range(6))
    def test_emitted_source_reparses(self, seed):
        dfg = generate_dfg(GenSpec(), seed)
        reparsed = parse_source(emit_source(dfg))
        stimulus = random_streams(dfg, n=4, seed=seed)
        assert (run_reference(dfg, stimulus, 4)
                == run_reference(reparsed, stimulus, 4))

    def test_spec_bounds_are_respected(self):
        spec = GenSpec(min_ops=2, max_ops=4, max_inputs=1, max_outputs=1,
                       max_states=0)
        for seed in range(10):
            dfg = generate_dfg(spec, seed)
            kinds = [node.kind for node in dfg.nodes]
            assert kinds.count(NodeKind.OP) in (2, 3, 4)
            assert len(dfg.inputs) == 1
            assert len(dfg.outputs) == 1
            assert NodeKind.DELAY not in kinds
            assert NodeKind.STATE_WRITE not in kinds

    def test_zero_density_means_no_coefficients(self):
        spec = GenSpec(constant_density=0.0, mult_coefficient_bias=0.0)
        for seed in range(10):
            dfg = generate_dfg(spec, seed)
            assert not dfg.params

    def test_ops_come_from_the_core_vocabulary(self):
        allowed = {name for name, _ in op_vocabulary("audio")}
        for seed in range(10):
            dfg = generate_dfg(GenSpec(), seed, core="audio")
            used = {node.name for node in dfg.nodes
                    if node.kind is NodeKind.OP}
            assert used <= allowed

    def test_pinned_ops_override_the_core(self):
        spec = GenSpec(ops=(("add", 2),), constant_density=0.0,
                       mult_coefficient_bias=0.0)
        dfg = generate_dfg(spec, 7, core="fir")
        used = {node.name for node in dfg.nodes if node.kind is NodeKind.OP}
        assert used == {"add"}


class TestGenSpecValidation:
    @pytest.mark.parametrize("fields", [
        dict(min_ops=0),
        dict(min_ops=5, max_ops=4),
        dict(max_inputs=0),
        dict(max_outputs=0),
        dict(max_states=-1),
        dict(max_delay=0),
        dict(constant_density=1.5),
        dict(depth_bias=-0.1),
        dict(operand_window=0),
    ])
    def test_bad_specs_rejected(self, fields):
        with pytest.raises(ReproError):
            GenSpec(**fields)

    def test_dict_roundtrip(self):
        spec = GenSpec(max_ops=9, constant_density=0.5,
                       ops=(("add", 2), ("pass", 1)))
        assert GenSpec.from_dict(spec.to_dict()) == spec

    def test_case_seed_is_plain_offset(self):
        assert case_seed(10, 0) == 10
        assert case_seed(10, 5) == 15


class TestGenerateCorpus:
    def test_pinned_corpus_is_deterministic(self):
        spec = GenSpec()
        first = generate_corpus(spec, 8, seed=50, core="fir", levels=(0,))
        second = generate_corpus(spec, 8, seed=50, core="fir", levels=(0,))
        assert [app.seed for app in first] == [app.seed for app in second]
        assert ([emit_source(app.dfg) for app in first]
                == [emit_source(app.dfg) for app in second])

    def test_compile_filter_records_cycles(self):
        corpus = generate_corpus(GenSpec(), 4, seed=0, core="fir",
                                 levels=(0, 2))
        for app in corpus:
            assert set(app.cycles) == {0, 2}
            assert all(cycles > 0 for cycles in app.cycles.values())

    def test_seeds_are_consecutive_case_seeds_with_gaps(self):
        corpus = generate_corpus(GenSpec(), 6, seed=30, core="fir",
                                 levels=(0,))
        seeds = [app.seed for app in corpus]
        assert seeds == sorted(seeds)
        assert all(seed >= 30 for seed in seeds)

    def test_budget_exhaustion_raises(self):
        with pytest.raises(ReproError, match="attempts"):
            generate_corpus(GenSpec(), 5, seed=0, core="fir",
                            levels=(0,), max_attempts=1)

    def test_bad_count_rejected(self):
        with pytest.raises(ReproError, match="count"):
            generate_corpus(GenSpec(), 0, seed=0)
