"""Tests for the source language frontend (lexer, parser, lowering)."""

import pytest

from repro.errors import SemanticError, SourceError
from repro.lang import (
    NodeKind,
    TokenKind,
    parse,
    parse_source,
    tokenize,
)

TREBLE = """
app treble;
param d1 = 0.40, d2 = -0.20, e1 = 0.30;
input IN;
output out;
state u(2), v(2);
loop {
  /* Treble section (paper, section 7) */
  u  = IN;
  x0 := u@2;          /* U delayed over 2 frames */
  m  := mlt(d2, x0);
  a  := pass(m);
  x2 := v@1;          /* V delayed over 1 frame */
  m  := mlt(e1, x2);
  a  := add(m, a);
  x1 := u@1;
  m  := mlt(d1, x1);
  rd := add_clip(m, a);
  v  = rd;
  out = rd;
}
"""


class TestLexer:
    def test_assign_vs_equals(self):
        kinds = [t.kind for t in tokenize("x := y; v = w;")]
        assert TokenKind.ASSIGN in kinds
        assert TokenKind.EQUALS in kinds

    def test_comments_are_skipped(self):
        tokens = tokenize("a /* hello\nworld */ b # line\nc")
        idents = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert idents == ["a", "b", "c"]

    def test_line_numbers_track_newlines(self):
        tokens = tokenize("a\nb\n  c")
        a, b, c = (t for t in tokens if t.kind is TokenKind.IDENT)
        assert (a.line, b.line, c.line) == (1, 2, 3)
        assert c.column == 3

    def test_negative_fraction(self):
        token = tokenize("-0.25")[0]
        assert token.kind is TokenKind.NUMBER
        assert float(token.text) == -0.25

    def test_unexpected_character(self):
        with pytest.raises(SourceError, match="unexpected character"):
            tokenize("a $ b")


class TestParser:
    def test_treble_parses(self):
        program = parse(TREBLE)
        assert program.name == "treble"
        assert [p.name for p in program.params] == ["d1", "d2", "e1"]
        assert program.inputs == ["IN"]
        assert program.outputs == ["out"]
        assert [(s.name, s.depth) for s in program.states] == [("u", 2), ("v", 2)]
        assert len(program.body) == 12

    def test_missing_semicolon(self):
        with pytest.raises(SourceError, match="expected"):
            parse("app x; loop { a := b }")

    def test_missing_loop(self):
        with pytest.raises(SourceError, match="declaration or 'loop'"):
            parse("app x; frob;")

    def test_statement_needs_assignment_operator(self):
        with pytest.raises(SourceError, match="':=' or '='"):
            parse("app x; loop { a b; }")

    def test_nested_calls(self):
        program = parse("app x; input i; output o; loop { o = add(pass(i), i); }")
        assert len(program.body) == 1


class TestLowering:
    def test_treble_dfg_shape(self):
        dfg = parse_source(TREBLE)
        histogram = dfg.op_histogram()
        assert histogram == {"mult": 3, "pass": 1, "add": 1, "add_clip": 1}
        kinds = [n.kind for n in dfg.nodes]
        assert kinds.count(NodeKind.DELAY) == 3
        assert kinds.count(NodeKind.STATE_WRITE) == 2
        assert kinds.count(NodeKind.INPUT) == 1
        assert kinds.count(NodeKind.OUTPUT) == 1

    def test_mlt_alias(self):
        dfg = parse_source(TREBLE)
        assert "mult" in dfg.op_histogram()
        assert "mlt" not in dfg.op_histogram()

    def test_local_rebinding_shadows(self):
        dfg = parse_source(
            "app x; input i; output o;\n"
            "loop { m := pass(i); m := pass(m); o = m; }"
        )
        # The output must consume the *second* pass, which consumes the first.
        output = next(n for n in dfg.nodes if n.kind is NodeKind.OUTPUT)
        second = dfg.node(output.args[0])
        first = dfg.node(second.args[0])
        assert second.name == "pass" and first.name == "pass"

    def test_input_read_once_per_iteration(self):
        dfg = parse_source(
            "app x; input i; output o; loop { o = add(i, i); }"
        )
        reads = [n for n in dfg.nodes if n.kind is NodeKind.INPUT]
        assert len(reads) == 1

    def test_state_read_without_delay_rejected(self):
        with pytest.raises(SemanticError, match="must be read with a delay"):
            parse_source(
                "app x; input i; output o; state s(1);\n"
                "loop { s = i; o = pass(s); }"
            )

    def test_unknown_name_rejected(self):
        with pytest.raises(SemanticError, match="unknown name"):
            parse_source("app x; output o; loop { o = pass(ghost); }")

    def test_delay_beyond_depth_rejected(self):
        with pytest.raises(SemanticError, match="outside the state's window"):
            parse_source(
                "app x; input i; output o; state s(1);\n"
                "loop { s = i; o = pass(s@2); }"
            )

    def test_state_written_twice_rejected(self):
        with pytest.raises(SemanticError, match="written twice"):
            parse_source(
                "app x; input i; output o; state s(1);\n"
                "loop { s = i; s = i; o = pass(s@1); }"
            )

    def test_state_read_never_written_rejected(self):
        with pytest.raises(SemanticError, match="never written"):
            parse_source(
                "app x; input i; output o; state s(1);\n"
                "loop { o = pass(s@1); }"
            )

    def test_commit_to_undeclared_name_rejected(self):
        with pytest.raises(SemanticError, match="neither a state nor an output"):
            parse_source("app x; input i; loop { bogus = pass(i); }")

    def test_local_assign_to_state_rejected(self):
        with pytest.raises(SemanticError, match="use '=' to"):
            parse_source(
                "app x; input i; output o; state s(1);\n"
                "loop { s := pass(i); o = pass(s@1); }"
            )
