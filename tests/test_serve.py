"""Tests for the compile service (repro.serve).

Integration tests run a real CompileServer on an ephemeral port with a
thread executor and a ``memory:`` cache backend, so the whole HTTP
round trip — submit, poll, stream, stats — happens in-process with no
disk and no spawned interpreters.  The acceptance checks from the
serving design live here: an HTTP compile is bit-identical to a local
``Toolchain.compile``, and a re-submission is served entirely from the
shared cache backend (zero executed stages, proven through the
``stagecache.*`` counters the stats endpoint aggregates).
"""

import threading
import time

import pytest

from repro import CompileOptions, Toolchain, audio_core
from repro.errors import ReproError
from repro.options import OPTIONS_SCHEMA_VERSION
from repro.pipeline.backend import _MEMORY_BACKENDS, open_backend
from repro.serve import (
    ProtocolError,
    ServeClient,
    ServeClientError,
    ServerConfig,
    WIRE_VERSION,
    execute_compile_job,
    parse_compile_request,
    run_worker,
    start_in_thread,
)
from repro.serve.protocol import job_payload

SOURCE = """
app served;
param k = 0.5;
input i; output o;
state s(1);
loop {
  s = i;
  m := mlt(k, s@1);
  o = add_clip(m, i);
}
"""

SOURCE_B = SOURCE.replace("0.5", "0.25").replace("app served",
                                                 "app served_b")

BAD_SOURCE = "app broken; loop { o = add(x, y); }"


def fresh_memory(name: str) -> str:
    """A guaranteed-empty named memory backend spec."""
    _MEMORY_BACKENDS.pop(name, None)
    return f"memory:{name}"


@pytest.fixture(scope="module")
def server():
    """One pool-mode server shared by the read-only round-trip tests."""
    config = ServerConfig(workers=2, executor="thread",
                          cache=fresh_memory("t-serve"),
                          rate_limit=None, job_timeout=60.0)
    with start_in_thread(config) as handle:
        yield handle


class TestProtocol:
    def test_rejects_unknown_wire_version(self):
        with pytest.raises(ProtocolError, match="wire_version 99"):
            parse_compile_request({"wire_version": 99, "source": SOURCE,
                                   "core": "audio"})

    def test_missing_stamp_reads_as_current(self):
        parsed = parse_compile_request({"source": SOURCE, "core": "audio"})
        assert parsed["core"] == "audio"

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_compile_request([1, 2])

    def test_rejects_empty_source(self):
        with pytest.raises(ProtocolError, match="source"):
            parse_compile_request({"source": "  ", "core": "audio"})

    def test_rejects_oversized_source(self):
        with pytest.raises(ProtocolError, match="byte limit"):
            parse_compile_request({"source": "x" * 100, "core": "audio"},
                                  max_source_bytes=10)

    def test_rejects_unknown_core(self):
        with pytest.raises(ProtocolError, match="unknown core"):
            parse_compile_request({"source": SOURCE, "core": "nonesuch"})

    def test_rejects_core_outside_allowlist(self):
        with pytest.raises(ProtocolError, match="unknown core"):
            parse_compile_request({"source": SOURCE, "core": "audio"},
                                  allowed_cores=frozenset({"fir"}))

    def test_rejects_bad_options(self):
        with pytest.raises(ProtocolError, match="bad options"):
            parse_compile_request({"source": SOURCE, "core": "audio",
                                   "options": {"opt": 7}})

    def test_rejects_skewed_options_schema(self):
        with pytest.raises(ProtocolError, match="schema_version"):
            parse_compile_request({
                "source": SOURCE, "core": "audio",
                "options": {"schema_version": OPTIONS_SCHEMA_VERSION + 1}})

    def test_options_validated_into_typed_object(self):
        parsed = parse_compile_request({
            "source": SOURCE, "core": "audio",
            "options": {"budget": 64, "opt": 2}})
        assert parsed["options"] == CompileOptions(budget=64, opt=2)


class TestExecuteCompileJob:
    def test_success_report(self):
        payload = job_payload(SOURCE, "audio", CompileOptions(budget=64),
                              None, "served")
        report = execute_compile_job(payload)
        assert report["ok"] is True
        assert report["result"]["n_cycles"] >= 1
        assert report["result"]["program"]["words"]
        assert report["counters"]  # the worker ships its telemetry home
        assert report["seconds"] > 0

    def test_failure_report_is_structured(self):
        payload = job_payload(BAD_SOURCE, "audio", CompileOptions(),
                              None, None)
        report = execute_compile_job(payload)
        assert report["ok"] is False
        assert report["error"]
        assert report["error_type"]

    def test_bit_identical_to_local_toolchain(self):
        options = CompileOptions(budget=64, disk_cache=False)
        report = execute_compile_job(
            job_payload(SOURCE, "audio", options, None, None))
        local = Toolchain(audio_core(), options, cache=None).compile(SOURCE)
        assert report["result"]["program"]["words"] == \
            [hex(word) for word in local.binary.words]


class TestRoundTrip:
    def test_health(self, server):
        health = ServeClient(server.url).health()
        assert health["ok"] is True
        assert health["mode"] == "pool"
        assert "audio" in health["cores"]
        assert health["wire_version"] == WIRE_VERSION

    def test_http_compile_bit_identical_to_local(self, server):
        client = ServeClient(server.url)
        job = client.submit(SOURCE, "audio",
                            options=CompileOptions(budget=64),
                            name="served")
        assert job["state"] in ("queued", "running")
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "done"
        local = Toolchain(audio_core(), budget=64, cache=None) \
            .compile(SOURCE)
        assert final["result"]["program"]["words"] == \
            [hex(word) for word in local.binary.words]
        assert final["result"]["n_cycles"] == local.n_cycles

    def test_resubmission_executes_zero_stages(self, server):
        client = ServeClient(server.url)
        first = client.wait(
            client.submit(SOURCE_B, "audio")["id"], timeout=60)
        assert first["state"] == "done"
        before = client.stats()["counters"]
        second = client.wait(
            client.submit(SOURCE_B, "audio")["id"], timeout=60)
        assert second["state"] == "done"
        # Every stage restored from the shared backend...
        assert second["result"]["cache"]["executed"] == 0
        # ...and the server-side counter aggregation agrees: the
        # second run added 8 stagecache hits and zero misses.
        after = client.stats()["counters"]
        assert after.get("stagecache.miss", 0) == \
            before.get("stagecache.miss", 0)
        assert after.get("stagecache.hit", 0) >= \
            before.get("stagecache.hit", 0) + 8
        # Both compiles produced the same binary.
        assert second["result"]["program"]["words"] == \
            first["result"]["program"]["words"]

    def test_compile_error_is_a_failed_job_not_a_500(self, server):
        client = ServeClient(server.url)
        final = client.wait(
            client.submit(BAD_SOURCE, "audio")["id"], timeout=60)
        assert final["state"] == "failed"
        assert final["error"]

    def test_batch_submission(self, server):
        client = ServeClient(server.url)
        jobs = client.submit_batch([
            {"source": SOURCE, "core": "audio", "name": "a"},
            {"source": SOURCE_B, "core": "audio", "name": "b"},
        ])
        assert len(jobs) == 2
        for job in jobs:
            assert client.wait(job["id"], timeout=60)["state"] == "done"

    def test_batch_is_validated_atomically(self, server):
        client = ServeClient(server.url)
        with pytest.raises(ServeClientError, match="unknown core"):
            client.submit_batch([
                {"source": SOURCE, "core": "audio"},
                {"source": SOURCE, "core": "nonesuch"},
            ])

    def test_events_stream_ends_at_terminal_state(self, server):
        client = ServeClient(server.url)
        job = client.submit(SOURCE, "audio")
        states = [event["state"]
                  for event in client.events(job["id"], timeout=60)]
        assert states[-1] == "done"

    def test_unknown_job_is_404(self, server):
        with pytest.raises(ServeClientError) as info:
            ServeClient(server.url).job("j-999999")
        assert info.value.status == 404

    def test_malformed_body_is_400(self, server):
        with pytest.raises(ServeClientError) as info:
            ServeClient(server.url).request("POST", "/v1/jobs",
                                            {"source": 42, "core": "audio"})
        assert info.value.status == 400

    def test_unknown_wire_version_is_400(self, server):
        with pytest.raises(ServeClientError) as info:
            ServeClient(server.url).request(
                "POST", "/v1/jobs",
                {"wire_version": 99, "source": SOURCE, "core": "audio"})
        assert info.value.status == 400
        assert "wire_version 99" in str(info.value)

    def test_cache_stats_and_gc_endpoints(self, server):
        client = ServeClient(server.url)
        client.wait(client.submit(SOURCE, "audio")["id"], timeout=60)
        stats = client.cache_stats()["cache"]
        assert stats["backend"] == "MemoryBackend"
        assert stats["entries"] >= 8
        # min_age far in the future: nothing old enough → nothing
        # evicted, in-flight artifacts are safe.
        kept = client.cache_gc(max_bytes=0, min_age=3600)
        assert kept["removed"] == 0
        assert kept["cache"]["entries"] == stats["entries"]

    def test_rejections_are_counted(self, server):
        client = ServeClient(server.url)
        before = client.stats()["counters"].get("serve.rejections", 0)
        with pytest.raises(ServeClientError):
            client.submit("", "audio")
        after = client.stats()["counters"].get("serve.rejections", 0)
        assert after == before + 1


class TestLimits:
    def test_queue_bound_yields_503(self):
        config = ServerConfig(workers=0, max_queue=2,
                              cache=fresh_memory("t-queue"))
        with start_in_thread(config) as handle:
            client = ServeClient(handle.url)
            client.submit(SOURCE, "audio")
            client.submit(SOURCE, "audio")
            with pytest.raises(ServeClientError) as info:
                client.submit(SOURCE, "audio")
            assert info.value.status == 503

    def test_rate_limit_yields_429(self):
        config = ServerConfig(workers=0, rate_limit=0.001, rate_burst=2,
                              cache=fresh_memory("t-rate"))
        with start_in_thread(config) as handle:
            client = ServeClient(handle.url)
            client.submit(SOURCE, "audio")
            client.submit(SOURCE, "audio")
            with pytest.raises(ServeClientError) as info:
                client.submit(SOURCE, "audio")
            assert info.value.status == 429
            # Polling is not rate limited — only submissions.
            assert client.stats()["counters"]["serve.rejections"] >= 1

    def test_job_timeout_reports_timeout_state(self):
        config = ServerConfig(workers=1, executor="thread",
                              job_timeout=0.000001,
                              cache=fresh_memory("t-timeout"))
        with start_in_thread(config) as handle:
            client = ServeClient(handle.url)
            job = client.submit(SOURCE, "audio")
            final = client.wait(job["id"], timeout=60)
            assert final["state"] == "timeout"
            assert client.stats()["counters"]["serve.timeouts"] == 1


class TestPullMode:
    def test_worker_claims_compiles_and_reports(self):
        config = ServerConfig(workers=0, cache=fresh_memory("t-pull"))
        with start_in_thread(config) as handle:
            client = ServeClient(handle.url)
            assert client.health()["mode"] == "pull"
            job = client.submit(SOURCE, "audio")
            completed = run_worker(handle.url, name="t-worker",
                                   poll=0.05, max_jobs=1)
            assert completed == 1
            final = client.wait(job["id"], timeout=30)
            assert final["state"] == "done"
            counters = client.stats()["counters"]
            assert counters["serve.claims"] == 1
            assert counters["serve.jobs_completed"] == 1
            # The remote worker's telemetry reached the server too.
            assert counters.get("stagecache.miss", 0) > 0

    def test_empty_queue_claim_is_none(self):
        config = ServerConfig(workers=0, cache=fresh_memory("t-empty"))
        with start_in_thread(config) as handle:
            assert ServeClient(handle.url).claim("t-worker") is None

    def test_stale_completion_is_refused(self):
        config = ServerConfig(workers=0, cache=fresh_memory("t-stale"))
        with start_in_thread(config) as handle:
            client = ServeClient(handle.url)
            job = client.submit(SOURCE, "audio")
            claimed = client.claim("real-worker")
            assert claimed["id"] == job["id"]
            with pytest.raises(ServeClientError) as info:
                client.complete(job["id"], "impostor",
                                {"ok": True, "result": {}})
            assert info.value.status == 404

    def test_expired_lease_requeues(self):
        config = ServerConfig(workers=0, lease_seconds=0.01,
                              cache=fresh_memory("t-lease"))
        with start_in_thread(config) as handle:
            client = ServeClient(handle.url)
            job = client.submit(SOURCE, "audio")
            assert client.claim("dead-worker")["id"] == job["id"]
            time.sleep(0.05)
            # The next claim reaps the expired lease and re-claims.
            again = client.claim("live-worker")
            assert again is not None and again["id"] == job["id"]

    def test_worker_shares_artifacts_through_the_cache(self):
        spec = fresh_memory("t-share")
        config = ServerConfig(workers=0, cache=spec)
        with start_in_thread(config) as handle:
            client = ServeClient(handle.url)
            client.submit(SOURCE, "audio")
            run_worker(handle.url, name="w", poll=0.05, max_jobs=1)
            backend = open_backend(spec)
            assert backend.keys()  # stage snapshots were published
            job2 = client.submit(SOURCE, "audio")
            run_worker(handle.url, name="w", poll=0.05, max_jobs=1)
            final = client.wait(job2["id"], timeout=30)
            assert final["result"]["cache"]["executed"] == 0


class TestServeClient:
    def test_unreachable_server_raises_repro_error(self):
        client = ServeClient("http://127.0.0.1:1", timeout=0.2)
        with pytest.raises(ReproError):
            client.health()

    def test_https_is_refused(self):
        with pytest.raises(ServeClientError, match="http"):
            ServeClient("https://example.com")


class TestConcurrentSubmissions:
    def test_parallel_clients_all_complete(self):
        config = ServerConfig(workers=2, executor="thread",
                              cache=fresh_memory("t-parallel"))
        with start_in_thread(config) as handle:
            results = []
            lock = threading.Lock()

            def one(tag: int) -> None:
                client = ServeClient(handle.url)
                job = client.submit(SOURCE, "audio", name=f"p{tag}")
                final = client.wait(job["id"], timeout=60)
                with lock:
                    results.append(final)

            threads = [threading.Thread(target=one, args=(i,))
                       for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert len(results) == 6
            assert all(final["state"] == "done" for final in results)
            words = {tuple(final["result"]["program"]["words"])
                     for final in results}
            assert len(words) == 1  # all bit-identical
