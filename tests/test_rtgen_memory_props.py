"""Property-based tests on the delay-line memory layout invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.dfg import StateSpec
from repro.rtgen import MemoryLayout, RomLayout


@st.composite
def state_sets(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return [
        StateSpec(f"s{i}", draw(st.integers(min_value=1, max_value=5)))
        for i in range(n)
    ]


class TestLayoutProperties:
    @given(state_sets())
    @settings(max_examples=80)
    def test_no_intra_frame_collisions(self, states):
        """All reads and the write of one frame hit distinct slots."""
        layout = MemoryLayout.for_states(states, ram_size=4096)
        for frame in range(layout.window * 2 + 3):
            fp = layout.frame_pointer(frame)
            addresses = []
            for spec in states:
                addresses.append((fp + layout.write_offset(spec.name))
                                 % layout.modulus)
                for k in range(1, spec.depth + 1):
                    addresses.append((fp + layout.read_offset(spec.name, k))
                                     % layout.modulus)
            assert len(addresses) == len(set(addresses))

    @given(state_sets())
    @settings(max_examples=80)
    def test_reads_return_what_was_written(self, states):
        """Reading s@k at frame f addresses the slot written at f - k."""
        layout = MemoryLayout.for_states(states, ram_size=4096)
        for spec in states:
            for frame in range(spec.depth, spec.depth + layout.window + 2):
                for k in range(1, spec.depth + 1):
                    read_addr = (layout.frame_pointer(frame)
                                 + layout.read_offset(spec.name, k)) \
                        % layout.modulus
                    write_addr = (layout.frame_pointer(frame - k)
                                  + layout.write_offset(spec.name)) \
                        % layout.modulus
                    assert read_addr == write_addr

    @given(state_sets())
    @settings(max_examples=40)
    def test_advance_matches_frame_pointer(self, states):
        layout = MemoryLayout.for_states(states, ram_size=4096)
        fp = 0
        for frame in range(1, layout.window * 3):
            fp = (fp + layout.advance_offset()) % layout.modulus
            assert fp == layout.frame_pointer(frame)

    @given(state_sets())
    @settings(max_examples=40)
    def test_all_slots_within_modulus(self, states):
        layout = MemoryLayout.for_states(states, ram_size=4096)
        for spec in states:
            for frame in range(layout.window + 1):
                assert 0 <= layout.slot(spec.name, frame) < layout.modulus


class TestRomLayout:
    def test_addresses_dense_and_sorted(self):
        layout = RomLayout.for_params({"b": 2, "a": 1, "c": 3}, rom_size=8)
        assert layout.address == {"a": 0, "b": 1, "c": 2}
        assert layout.words == (1, 2, 3)

    def test_word_lookup_matches_address(self):
        values = {"x": 17, "y": -4, "z": 900}
        layout = RomLayout.for_params(values, rom_size=8)
        for name, value in values.items():
            assert layout.words[layout.address[name]] == value

    @given(st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=3),
        st.integers(min_value=-32768, max_value=32767),
        min_size=1, max_size=16,
    ))
    @settings(max_examples=50)
    def test_roundtrip_property(self, values):
        layout = RomLayout.for_params(values, rom_size=64)
        assert len(layout.words) == len(values)
        for name, value in values.items():
            assert layout.words[layout.address[name]] == value
