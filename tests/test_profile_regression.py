"""Tests for ``tools/check_profile_regression.py`` — the CI guard
comparing per-stage compile-profile shares against the committed
baseline."""

import importlib.util
import json
from pathlib import Path


TOOL = (Path(__file__).resolve().parent.parent
        / "tools" / "check_profile_regression.py")
BASELINE = (Path(__file__).resolve().parent.parent
            / "benchmarks" / "compile_profile_baseline.json")

spec = importlib.util.spec_from_file_location("check_profile_regression",
                                              TOOL)
tool = importlib.util.module_from_spec(spec)
spec.loader.exec_module(tool)


def regime(**p50s):
    """A profile regime dict from stage -> p50 seconds."""
    total = sum(p50s.values())
    out = {stage: {"n": 5, "p50": p50, "p95": p50, "mean": p50}
           for stage, p50 in p50s.items()}
    out["total"] = {"n": 5, "p50": total, "p95": total, "mean": total}
    return out


def record(**p50s):
    return {"application": "x", "core": "audio", "runs": 5,
            "stages": [s for s in p50s],
            "cold": regime(**p50s), "warm": regime(**p50s)}


class TestShares:
    def test_shares_normalize_by_total(self):
        shares = tool.shares(regime(a=0.010, b=0.030))
        assert shares == {"a": 0.25, "b": 0.75}
        assert "total" not in shares

    def test_zero_total_yields_nothing(self):
        assert tool.shares(regime(a=0.0)) == {}


class TestCheckRegime:
    def test_within_ratio_passes(self):
        problems, notes = [], []
        tool.check_regime("cold", regime(a=0.010, b=0.010),
                          regime(a=0.012, b=0.008),
                          3.0, 0.002, problems, notes)
        assert problems == [] and notes == []

    def test_share_growth_beyond_ratio_fails(self):
        problems, notes = [], []
        # a: 10% of total -> 50% of total = 5x share growth.
        tool.check_regime("cold", regime(a=0.050, b=0.050),
                          regime(a=0.010, b=0.090),
                          3.0, 0.002, problems, notes)
        assert len(problems) == 1
        assert "'a'" in problems[0] and "cold" in problems[0]

    def test_sub_floor_stages_never_fail(self):
        problems, notes = [], []
        # Same 5x share growth, but at 0.1 ms absolute: noise.
        tool.check_regime("cold", regime(a=0.0001, b=0.0001),
                          regime(a=0.00002, b=0.00018),
                          3.0, 0.002, problems, notes)
        assert problems == []

    def test_new_stage_is_a_note_not_a_failure(self):
        problems, notes = [], []
        tool.check_regime("cold", regime(a=0.010, new=0.010),
                          regime(a=0.010),
                          3.0, 0.002, problems, notes)
        assert problems == []
        assert len(notes) == 1 and "'new'" in notes[0]


class TestMain:
    def write(self, tmp_path, name, rec):
        path = tmp_path / name
        path.write_text(json.dumps(rec))
        return str(path)

    def test_identical_profiles_pass(self, tmp_path, capsys):
        current = self.write(tmp_path, "current.json",
                             record(a=0.010, b=0.020))
        base = self.write(tmp_path, "base.json", record(a=0.010, b=0.020))
        assert tool.main(["prog", current, "--baseline", base]) == 0
        assert "profile shares ok" in capsys.readouterr().out

    def test_regression_fails_with_report(self, tmp_path, capsys):
        current = self.write(tmp_path, "current.json",
                             record(a=0.090, b=0.010))
        base = self.write(tmp_path, "base.json", record(a=0.010, b=0.090))
        assert tool.main(["prog", current, "--baseline", base]) == 1
        out = capsys.readouterr().out
        assert "regression" in out and "'a'" in out

    def test_committed_baseline_is_a_valid_record(self):
        """The baseline CI compares against must itself be a complete
        profile record for the audio application."""
        from repro.pipeline import STAGE_NAMES

        rec = json.loads(BASELINE.read_text())
        assert rec["core"] == "audio"
        assert rec["stages"] == list(STAGE_NAMES)
        for reg in ("cold", "warm"):
            assert set(rec[reg]) == set(STAGE_NAMES) | {"total"}
            assert rec[reg]["total"]["p50"] > 0