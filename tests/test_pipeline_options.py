"""Tests for Toolchain's options and artifact integrity."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    CompileOptions,
    Q15,
    Toolchain,
    audio_core,
    run_reference,
    tiny_core,
)
from repro.arch import MergeSpec
from repro.errors import BudgetExceededError, OptionsError
from repro.lang import parse_source
from repro.options import (
    COVER_ALGORITHMS,
    MODES,
    OPT_LEVELS,
    OPTIONS_SCHEMA_VERSION,
    VERIFY_LEVELS,
)
from repro.pipeline import STAGE_NAMES

SOURCE = """
app opts;
param k = 0.5;
input i; output o;
state s(1);
loop {
  s = i;
  m := mlt(k, s@1);
  o = add_clip(m, i);
}
"""


def stimulus():
    return {"i": [Q15.from_float(v) for v in (0.5, -0.25, 0.125, 0.0, 0.9)]}


class TestOptions:
    def test_budget_none_minimises_nothing_but_still_compiles(self):
        compiled = Toolchain(audio_core(), cache=None).compile(SOURCE)
        assert compiled.schedule.budget is None
        assert compiled.run(stimulus()) == run_reference(compiled.dfg, stimulus())

    def test_budget_is_recorded(self):
        compiled = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        assert compiled.schedule.budget == 64
        assert compiled.n_cycles <= 64

    def test_budget_violation_raises_with_numbers(self):
        with pytest.raises(BudgetExceededError) as info:
            Toolchain(audio_core(), cache=None, budget=2).compile(SOURCE)
        assert info.value.budget == 2
        assert info.value.achieved > 2

    @pytest.mark.parametrize("algorithm", ["greedy", "exact", "edge"])
    def test_cover_algorithms_equivalent_outputs(self, algorithm):
        compiled = Toolchain(audio_core(), cache=None, cover=algorithm) \
            .compile(SOURCE)
        assert compiled.run(stimulus()) == run_reference(compiled.dfg, stimulus())

    def test_string_and_dfg_inputs_equivalent(self):
        from_text = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        from_dfg = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(parse_source(SOURCE))
        assert from_text.binary.words == from_dfg.binary.words

    def test_deterministic_compilation(self):
        a = Toolchain(audio_core(), cache=None, budget=64).compile(SOURCE)
        b = Toolchain(audio_core(), cache=None, budget=64).compile(SOURCE)
        assert a.binary.words == b.binary.words

    def test_merges_with_simulation(self):
        merges = MergeSpec().merge_register_files(
            "rf_opb", ["rf_opb1", "rf_opb2"])
        compiled = Toolchain(audio_core(), cache=None) \
            .compile(SOURCE, merges=merges)
        assert compiled.run(stimulus()) == run_reference(compiled.dfg, stimulus())


#: Every field with its full legal domain — a new field added to
#: CompileOptions without a strategy here still round-trips (it takes
#: its default), but extending the strategy keeps the wire schema
#: honest over the whole space.
options_strategy = st.builds(
    CompileOptions,
    opt=st.sampled_from(OPT_LEVELS),
    budget=st.one_of(st.none(), st.integers(min_value=1, max_value=4096)),
    cover=st.sampled_from(COVER_ALGORITHMS),
    mode=st.sampled_from(MODES),
    repeat=st.integers(min_value=1, max_value=64),
    restarts=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    stop_after=st.one_of(st.none(), st.sampled_from(STAGE_NAMES)),
    verify=st.sampled_from(VERIFY_LEVELS),
    cache_dir=st.one_of(st.none(), st.text(min_size=1, max_size=20)),
    disk_cache=st.booleans(),
)


class TestWireSchema:
    """The versioned to_dict/from_dict JSON schema (the serve wire)."""

    @given(options_strategy)
    def test_roundtrip_through_actual_json(self, options):
        # Through real json.dumps/loads — the wire, not just dict
        # identity: this is what travels in POST /v1/jobs bodies and
        # batch manifests.
        wire = json.dumps(options.to_dict())
        assert CompileOptions.from_dict(json.loads(wire)) == options

    @given(options_strategy)
    def test_every_payload_is_stamped(self, options):
        payload = options.to_dict()
        assert payload["schema_version"] == OPTIONS_SCHEMA_VERSION

    def test_unknown_schema_version_is_refused(self):
        payload = CompileOptions().to_dict()
        payload["schema_version"] = OPTIONS_SCHEMA_VERSION + 1
        with pytest.raises(OptionsError, match="schema_version"):
            CompileOptions.from_dict(payload)

    def test_error_names_both_versions(self):
        with pytest.raises(OptionsError) as info:
            CompileOptions.from_dict({"schema_version": 99})
        assert "99" in str(info.value)
        assert str(OPTIONS_SCHEMA_VERSION) in str(info.value)

    def test_unstamped_payload_reads_as_current(self):
        # Pre-stamp payloads (older manifests) still load.
        assert CompileOptions.from_dict({"budget": 64}) == \
            CompileOptions(budget=64)

    def test_unknown_fields_still_refused(self):
        with pytest.raises(OptionsError, match="unknown option field"):
            CompileOptions.from_dict(
                {"schema_version": OPTIONS_SCHEMA_VERSION, "budgett": 3})


class TestArtifacts:
    def test_all_stages_exposed(self):
        compiled = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        assert compiled.rt_program.rts
        assert compiled.conflict_model.cover == [frozenset("ABC")]
        assert compiled.dependence_graph.edges
        assert compiled.allocation.pressure
        assert compiled.binary.words

    def test_schedule_instructions_cover_all_rts(self):
        compiled = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        instructions = compiled.schedule.instructions()
        total = sum(len(instruction) for instruction in instructions)
        assert total == len(compiled.rt_program.rts)

    def test_word_count_matches_structure(self):
        compiled = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        assert len(compiled.binary.words) == compiled.n_cycles + 1  # + IDLE

    def test_rom_only_when_params(self):
        no_params = Toolchain(tiny_core(), cache=None) \
            .compile("app x; input i; output o; loop { o = pass(i); }")
        assert no_params.binary.rom_words == ()
        with_params = Toolchain(audio_core(), cache=None).compile(SOURCE)
        assert len(with_params.binary.rom_words) == 1
