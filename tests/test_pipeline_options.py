"""Tests for Toolchain's options and artifact integrity."""

import pytest

from repro import Q15, Toolchain, audio_core, run_reference, tiny_core
from repro.arch import MergeSpec
from repro.errors import BudgetExceededError
from repro.lang import parse_source

SOURCE = """
app opts;
param k = 0.5;
input i; output o;
state s(1);
loop {
  s = i;
  m := mlt(k, s@1);
  o = add_clip(m, i);
}
"""


def stimulus():
    return {"i": [Q15.from_float(v) for v in (0.5, -0.25, 0.125, 0.0, 0.9)]}


class TestOptions:
    def test_budget_none_minimises_nothing_but_still_compiles(self):
        compiled = Toolchain(audio_core(), cache=None).compile(SOURCE)
        assert compiled.schedule.budget is None
        assert compiled.run(stimulus()) == run_reference(compiled.dfg, stimulus())

    def test_budget_is_recorded(self):
        compiled = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        assert compiled.schedule.budget == 64
        assert compiled.n_cycles <= 64

    def test_budget_violation_raises_with_numbers(self):
        with pytest.raises(BudgetExceededError) as info:
            Toolchain(audio_core(), cache=None, budget=2).compile(SOURCE)
        assert info.value.budget == 2
        assert info.value.achieved > 2

    @pytest.mark.parametrize("algorithm", ["greedy", "exact", "edge"])
    def test_cover_algorithms_equivalent_outputs(self, algorithm):
        compiled = Toolchain(audio_core(), cache=None, cover=algorithm) \
            .compile(SOURCE)
        assert compiled.run(stimulus()) == run_reference(compiled.dfg, stimulus())

    def test_string_and_dfg_inputs_equivalent(self):
        from_text = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        from_dfg = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(parse_source(SOURCE))
        assert from_text.binary.words == from_dfg.binary.words

    def test_deterministic_compilation(self):
        a = Toolchain(audio_core(), cache=None, budget=64).compile(SOURCE)
        b = Toolchain(audio_core(), cache=None, budget=64).compile(SOURCE)
        assert a.binary.words == b.binary.words

    def test_merges_with_simulation(self):
        merges = MergeSpec().merge_register_files(
            "rf_opb", ["rf_opb1", "rf_opb2"])
        compiled = Toolchain(audio_core(), cache=None) \
            .compile(SOURCE, merges=merges)
        assert compiled.run(stimulus()) == run_reference(compiled.dfg, stimulus())


class TestArtifacts:
    def test_all_stages_exposed(self):
        compiled = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        assert compiled.rt_program.rts
        assert compiled.conflict_model.cover == [frozenset("ABC")]
        assert compiled.dependence_graph.edges
        assert compiled.allocation.pressure
        assert compiled.binary.words

    def test_schedule_instructions_cover_all_rts(self):
        compiled = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        instructions = compiled.schedule.instructions()
        total = sum(len(instruction) for instruction in instructions)
        assert total == len(compiled.rt_program.rts)

    def test_word_count_matches_structure(self):
        compiled = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(SOURCE)
        assert len(compiled.binary.words) == compiled.n_cycles + 1  # + IDLE

    def test_rom_only_when_params(self):
        no_params = Toolchain(tiny_core(), cache=None) \
            .compile("app x; input i; output o; loop { o = pass(i); }")
        assert no_params.binary.rom_words == ()
        with_params = Toolchain(audio_core(), cache=None).compile(SOURCE)
        assert len(with_params.binary.rom_words) == 1
