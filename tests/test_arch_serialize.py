"""Tests for core (de)serialization: a core travels as one JSON artifact."""

import json

import pytest

from repro import Q15, Toolchain, run_reference
from repro.apps import adaptive_core
from repro.arch import (
    audio_core,
    core_from_dict,
    core_to_dict,
    dump_core,
    fir_core,
    load_core,
    tiny_core,
    validate_datapath,
)
from repro.errors import ArchitectureError
from repro.lang import DfgBuilder

ALL_CORES = [audio_core, fir_core, tiny_core, adaptive_core]


class TestRoundtrip:
    @pytest.mark.parametrize("factory", ALL_CORES)
    def test_dict_roundtrip_is_stable(self, factory):
        core = factory()
        once = core_to_dict(core)
        again = core_to_dict(core_from_dict(once))
        assert once == again

    @pytest.mark.parametrize("factory", ALL_CORES)
    def test_loaded_core_is_valid(self, factory):
        loaded = load_core(dump_core(factory()))
        validate_datapath(loaded.datapath)  # must not raise

    def test_json_is_actually_json(self):
        payload = json.loads(dump_core(tiny_core()))
        assert payload["name"] == "tiny"
        assert payload["format_version"] == 1

    def test_mux_input_order_survives(self):
        original = audio_core()
        loaded = load_core(dump_core(original))
        for name, mux in original.datapath.muxes.items():
            loaded_mux = loaded.datapath.muxes[name]
            assert [b.name for b in mux.inputs] == \
                [b.name for b in loaded_mux.inputs]

    def test_instruction_set_data_survives(self):
        loaded = load_core(dump_core(audio_core()))
        assert len(loaded.class_defs) == 9
        assert frozenset({"A", "D", "X", "G", "Y", "L", "M"}) in \
            loaded.instruction_types

    def test_compilation_on_loaded_core_is_identical(self):
        b = DfgBuilder("x")
        k = b.param("k", 0.5)
        s = b.state("s", depth=1)
        i = b.input("i")
        b.write(s, i)
        b.output("o", b.op("add_clip", b.op("mult", k, b.delay(s, 1)), i))
        dfg = b.build()

        original = Toolchain(fir_core(), cache=None).compile(dfg)
        loaded = Toolchain(load_core(dump_core(fir_core())), cache=None) \
            .compile(dfg)
        assert original.n_cycles == loaded.n_cycles
        assert original.binary.words == loaded.binary.words

        stimulus = {"i": [Q15.from_float(v) for v in (0.5, -0.25, 0.125)]}
        assert loaded.run(stimulus) == run_reference(dfg, stimulus)

    def test_unsupported_version_rejected(self):
        payload = core_to_dict(tiny_core())
        payload["format_version"] = 99
        with pytest.raises(ArchitectureError, match="version"):
            core_from_dict(payload)
