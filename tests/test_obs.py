"""Tests for ``repro.obs``: spans, counters, events, traces, profiles.

Everything here drives the instrumentation the way callers do — via
the :class:`Toolchain` facade and the CLI — and asserts on the
recorded telemetry, not on implementation internals.
"""

import json
import threading

import pytest

from repro import (
    CompileOptions,
    Telemetry,
    Toolchain,
    use_telemetry,
)
from repro.apps import fir_application
from repro.arch import Allocation
from repro.cli import main
from repro.obs import (
    COUNTERS,
    NULL_SPAN,
    chrome_trace,
    current_telemetry,
    profile_compile,
    render_profile,
    set_telemetry,
    write_chrome_trace,
    write_profile,
)
from repro.obs.profile import percentile
from repro.pipeline import STAGE_NAMES, DiskCache, StageCache
from repro.report import timeline

GAIN = """
app gain;
param g = 0.5;
input i; output o;
loop { o = mlt(g, i); }
"""


@pytest.fixture(autouse=True)
def _null_registry():
    """Every test starts and ends with the process-wide null default."""
    set_telemetry(None)
    yield
    set_telemetry(None)


def compile_with(obs, **toolchain_kwargs):
    toolchain = Toolchain("audio", CompileOptions(disk_cache=False),
                          telemetry=obs, **toolchain_kwargs)
    toolchain.compile(GAIN)
    return toolchain


class TestSpanTree:
    def test_compile_records_one_span_per_stage(self):
        obs = Telemetry()
        compile_with(obs)
        (root,) = obs.roots
        assert root.name == "compile"
        assert root.tags["core"] == "audio"
        names = [child.name for child in root.children]
        assert names == [f"stage:{s}" for s in STAGE_NAMES]
        for child in root.children:
            assert child.tags["cache_source"] == "executed"
            assert len(child.tags["fingerprint"]) == 16
            assert child.duration > 0.0

    def test_stage_spans_account_for_the_compile(self):
        """The stage slots cover lookup + restore/execute + store: the
        children's total duration is close to the root's."""
        obs = Telemetry()
        compile_with(obs)
        (root,) = obs.roots
        covered = sum(child.duration for child in root.children)
        assert covered >= 0.8 * root.duration

    def test_batch_second_app_restores_from_memory(self):
        obs = Telemetry()
        toolchain = Toolchain("audio", CompileOptions(disk_cache=False),
                              telemetry=obs)
        result = toolchain.compile_many([GAIN, GAIN])
        assert [e.error for e in result.entries] == [None, None]
        (batch,) = obs.roots
        assert batch.name == "batch"
        assert batch.tags["applications"] == 2
        first, second = batch.children
        assert first.name == second.name == "compile"
        assert all(c.tags["cache_source"] == "executed"
                   for c in first.children)
        assert all(c.tags["cache_source"] == "memory"
                   for c in second.children)
        # Identical source, identical chained fingerprints.
        assert [c.tags["fingerprint"] for c in first.children] == \
            [c.tags["fingerprint"] for c in second.children]

    def test_uncached_toolchain_still_records_stage_spans(self):
        obs = Telemetry()
        compile_with(obs, cache=None)
        (root,) = obs.roots
        assert [c.name for c in root.children] == \
            [f"stage:{s}" for s in STAGE_NAMES]
        assert all(c.tags["cache_source"] == "executed"
                   for c in root.children)

    def test_run_nests_simulate_under_run(self):
        obs = Telemetry()
        toolchain = Toolchain("audio", CompileOptions(disk_cache=False),
                              telemetry=obs)
        toolchain.run(GAIN, {"i": [100, 200]})
        (root,) = obs.roots
        assert root.name == "run"
        assert [c.name for c in root.children] == ["compile", "simulate"]

    def test_spans_nest_per_thread(self):
        """Concurrent threads each build their own well-formed tree."""
        obs = Telemetry()

        def one_tree(tag):
            with obs.span("outer", tag=tag):
                with obs.span("inner", tag=tag):
                    pass

        threads = [threading.Thread(target=one_tree, args=(k,))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(obs.roots) == 4
        for root in obs.roots:
            (inner,) = root.children
            assert inner.tags["tag"] == root.tags["tag"]

    def test_span_walk_and_to_dict(self):
        obs = Telemetry()
        with obs.span("a"):
            with obs.span("b"):
                pass
        (a,) = obs.roots
        assert [s.name for s in a.walk()] == ["a", "b"]
        rendered = a.to_dict()
        assert rendered["name"] == "a"
        assert rendered["children"][0]["name"] == "b"
        assert rendered["duration"] >= rendered["children"][0]["duration"]


class TestDisabledIsFree:
    def test_default_registry_is_disabled(self):
        obs = current_telemetry()
        assert not obs.enabled

    def test_disabled_span_is_the_shared_null_span(self):
        obs = Telemetry(enabled=False)
        assert obs.span("anything", tag=1) is NULL_SPAN
        assert obs.span("other") is NULL_SPAN  # no per-call allocation

    def test_disabled_registry_records_nothing(self):
        obs = Telemetry(enabled=False)
        with obs.span("x"):
            obs.count("stagecache.hit")
            obs.gauge("g", 1.0)
            obs.event("e", field=1)
        assert not obs.roots and not obs.counters
        assert not obs.gauges and not obs.events

    def test_compile_under_null_registry_leaves_no_trace(self):
        before = current_telemetry().to_dict()
        Toolchain("audio", CompileOptions(disk_cache=False)).compile(GAIN)
        assert current_telemetry().to_dict() == before
        assert before == {"spans": [], "counters": {}, "gauges": {},
                          "events": []}


class TestCounters:
    def test_every_emitted_counter_is_canonical(self):
        """A compile through both cache tiers only emits counters
        declared in ``COUNTERS`` (what the docs table is checked
        against)."""
        obs = Telemetry()
        compile_with(obs)
        compile_with(obs)
        assert set(obs.counters) <= set(COUNTERS)

    def test_stagecache_hit_miss_store(self):
        obs = Telemetry()
        toolchain = Toolchain("audio", CompileOptions(disk_cache=False),
                              telemetry=obs)
        toolchain.compile(GAIN)
        n = len(STAGE_NAMES)
        assert obs.counters["stagecache.miss"] == n
        assert obs.counters["stagecache.store"] == n
        assert "stagecache.hit" not in obs.counters
        toolchain.compile(GAIN)
        assert obs.counters["stagecache.hit"] == n
        assert "stagecache.disk_hit" not in obs.counters

    def test_disk_tier_counters(self, tmp_path):
        obs = Telemetry()
        with use_telemetry(obs):
            store = StageCache(disk=DiskCache(tmp_path))
            Toolchain("audio", CompileOptions(), cache=store).compile(GAIN)
            # A fresh memory tier over the same directory: every stage
            # restores from disk.
            fresh = StageCache(disk=DiskCache(tmp_path))
            Toolchain("audio", CompileOptions(), cache=fresh).compile(GAIN)
        n = len(STAGE_NAMES)
        assert obs.counters["diskcache.store"] == n
        assert obs.counters["diskcache.hit"] == n
        assert obs.counters["stagecache.disk_hit"] == n
        assert obs.counters["stagecache.hit"] == n

    def test_subsystem_counters_present(self):
        obs = Telemetry()
        compile_with(obs)
        for name in ("sched.list.attempts", "sched.regalloc.intervals",
                     "rtgen.values_routed"):
            assert obs.counters[name] >= 1, name


class TestDiskCacheWriteError:
    def test_write_errors_count_but_event_fires_once(self, tmp_path,
                                                     monkeypatch):
        cache = DiskCache(tmp_path)
        monkeypatch.setattr("repro.pipeline.diskcache.serialize",
                            lambda *a, **k: (_ for _ in ()).throw(
                                OSError("disk full")))
        obs = Telemetry()
        with use_telemetry(obs):
            cache.put("k1", {"a": 1})
            cache.put("k2", {"a": 2})
        assert cache.stats.write_errors == 2
        assert obs.counters["diskcache.write_error"] == 2
        warnings = [e for e in obs.events
                    if e["name"] == "diskcache.write_error"]
        assert len(warnings) == 1  # one structured warning, not a flood
        assert warnings[0]["level"] == "warning"
        assert "disk full" in warnings[0]["error"]

    def test_write_error_never_raises(self, tmp_path, monkeypatch):
        cache = DiskCache(tmp_path)
        monkeypatch.setattr("repro.pipeline.diskcache.serialize",
                            lambda *a, **k: (_ for _ in ()).throw(
                                OSError("nope")))
        cache.put("k", {"a": 1})  # degraded, silent under null registry


class TestEventsAndCallbacks:
    def test_on_event_sees_records_as_they_land(self):
        obs = Telemetry()
        seen = []
        obs.on_event(seen.append)
        obs.event("ping", value=1)
        obs.event("pong", value=2)
        assert [e["name"] for e in seen] == ["ping", "pong"]
        assert seen[0]["value"] == 1
        assert seen == obs.events

    def test_explore_progress_callback_and_counters(self):
        obs = Telemetry()
        toolchain = Toolchain("audio", CompileOptions(disk_cache=False),
                              cache=None, telemetry=obs)
        fir4 = fir_application([0.1, 0.2, 0.3, 0.4], name="fir4")
        candidates = [Allocation(n_mult=m, n_alu=1, n_ram=1)
                      for m in (1, 2)]
        records = []
        points = toolchain.explore([fir4], candidates,
                                   progress=records.append)
        assert len(points) == 2
        assert [r["done"] for r in records] == [1, 2]
        assert all(r["total"] == 2 for r in records)
        assert all(r["cached"] is False for r in records)
        assert obs.counters["explore.candidates"] == 2
        assert len([e for e in obs.events
                    if e["name"] == "explore.candidate"]) == 2
        (root,) = obs.roots
        assert root.name == "explore"


class TestExports:
    def test_telemetry_to_dict_roundtrips_through_json(self):
        obs = Telemetry()
        compile_with(obs)
        record = json.loads(json.dumps(obs.to_dict()))
        assert [s["name"] for s in record["spans"]] == ["compile"]
        assert record["counters"]["stagecache.miss"] == len(STAGE_NAMES)

    def test_timeline_renders_spans_and_counters(self):
        obs = Telemetry()
        compile_with(obs)
        text = timeline(obs)
        for stage in STAGE_NAMES:
            assert f"stage:{stage}" in text
        assert "cache_source=executed" in text
        assert "counters" in text
        assert "stagecache.miss" in text

    def test_chrome_trace_covers_every_stage(self):
        obs = Telemetry()
        compile_with(obs)
        trace = chrome_trace(obs)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {f"stage:{s}" for s in STAGE_NAMES} <= names
        assert "compile" in names
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
        (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "counters"
        assert instant["args"]["stagecache.miss"] == len(STAGE_NAMES)

    def test_write_chrome_trace(self, tmp_path):
        obs = Telemetry()
        compile_with(obs)
        path = write_chrome_trace(obs, tmp_path / "trace.json")
        trace = json.loads(path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        assert trace["traceEvents"]


class TestProfile:
    def test_percentile(self):
        assert percentile([1.0], 95) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0

    def test_profile_compile_shape(self):
        record = profile_compile(GAIN, core="audio", runs=2)
        assert record["core"] == "audio"
        assert record["runs"] == 2
        assert record["stages"] == list(STAGE_NAMES)
        assert record["options"]["disk_cache"] is False  # forced off
        for regime in ("cold", "warm"):
            summary = record[regime]
            assert set(summary) == set(STAGE_NAMES) | {"total"}
            for stats in summary.values():
                assert stats["n"] == 2
                assert 0 <= stats["p50"] <= stats["p95"]

    def test_render_and_write_profile(self, tmp_path):
        record = profile_compile(GAIN, core="audio", runs=1)
        table = render_profile(record)
        assert "cold" in table and "warm" in table
        for stage in STAGE_NAMES:
            assert stage in table
        path = write_profile(record, tmp_path / "profile.json")
        assert json.loads(path.read_text())["stages"] == list(STAGE_NAMES)

    def test_profile_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            profile_compile(GAIN, runs=0)


class TestCliObservability:
    @pytest.fixture
    def source_file(self, tmp_path):
        path = tmp_path / "gain.dsp"
        path.write_text(GAIN)
        return str(path)

    def test_compile_trace_writes_valid_chrome_trace(self, source_file,
                                                     tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["compile", source_file, "--core", "audio",
                     "--no-disk-cache", "--trace", str(out)]) == 0
        trace = json.loads(out.read_text())
        stage_events = [e for e in trace["traceEvents"]
                        if e.get("ph") == "X"
                        and e["name"].startswith("stage:")]
        assert len(stage_events) >= 8
        assert str(out) in capsys.readouterr().err

    def test_compile_timings_prints_timeline_to_stderr(self, source_file,
                                                       capsys):
        assert main(["compile", source_file, "--core", "audio",
                     "--no-disk-cache", "--timings"]) == 0
        err = capsys.readouterr().err
        assert "stage:schedule" in err
        assert "counters" in err

    def test_cache_summary_line_matches_counters(self, source_file,
                                                 tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["compile", source_file, "--core", "audio",
                "--cache-dir", cache]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0  # fresh process-like rerun: all disk hits
        out = capsys.readouterr().out
        assert "8/8 stages cached (8 disk)" in out

    def test_profile_subcommand(self, tmp_path, capsys):
        out = tmp_path / "BENCH_compile_profile.json"
        assert main(["profile", "--app", "fir", "-n", "1",
                     "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "cold" in stdout and "warm" in stdout
        record = json.loads(out.read_text())
        assert record["runs"] == 1
        assert set(record["cold"]) == set(STAGE_NAMES) | {"total"}

    def test_profile_rejects_bad_runs(self, capsys):
        assert main(["profile", "--app", "fir", "-n", "0"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_explore_progress_flag(self, source_file, capsys):
        assert main(["explore", source_file, "--mults", "1",
                     "--alus", "1,2", "--rams", "1", "--no-disk-cache",
                     "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[1/" in captured.err and "]" in captured.err
