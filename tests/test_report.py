"""Tests for the reporting package (figure-9 chart, tables, Gantt)."""

from repro import Toolchain, audio_core
from repro.arch import Allocation, ExplorationPoint
from repro.core import ClassTable, ConflictGraph, InstructionSet, greedy_cover
from repro.lang import parse_source
from repro.report import (
    class_table_report,
    conflict_report,
    exploration_report,
    gantt_chart,
    occupation_chart,
    occupation_rows,
    summary_report,
)

SOURCE = """
app tiny_audio;
param k = 0.5;
input i; output o;
state s(1);
loop {
  s = i;
  m := mlt(k, s@1);
  o = pass_clip(m);
}
"""


def compiled():
    return Toolchain(audio_core(), cache=None, budget=64) \
        .compile(parse_source(SOURCE))


class TestOccupation:
    def test_rows_cover_requested_opus(self):
        c = compiled()
        rows = occupation_rows(c.schedule, ["mult", "ram"], {"mult": "MULT"})
        assert [r.name for r in rows] == ["MULT", "ram"]

    def test_percent_truncates_like_the_paper(self):
        # 58 busy of 63 cycles must print 92 (not 92.06 rounded oddly).
        from repro.report.occupation import OccupationRow
        row = OccupationRow("X", busy=58, total=63, cycles=frozenset())
        assert row.percent == 92
        row = OccupationRow("X", busy=59, total=63, cycles=frozenset())
        assert row.percent == 93
        row = OccupationRow("X", busy=0, total=0, cycles=frozenset())
        assert row.percent == 0

    def test_chart_has_bars_and_axis(self):
        c = compiled()
        chart = occupation_chart(c.schedule)
        lines = chart.splitlines()
        assert any("*" in line for line in lines)
        assert any(line.strip().startswith("0") for line in lines[-1:])
        assert "%" in lines[0]

    def test_chart_bar_width_equals_length(self):
        c = compiled()
        chart = occupation_chart(c.schedule, ["mult"])
        bar = chart.splitlines()[0].split("|", 1)[1]
        assert len(bar) == c.schedule.length


class TestTables:
    def test_class_table_report(self):
        text = class_table_report(ClassTable.from_core(audio_core()))
        assert "RT Class identification" in text
        assert "{read, write}" in text       # class X
        assert " A" in text and " M" in text

    def test_conflict_report_with_cover(self):
        iset = InstructionSet.from_desired(
            ["A", "B", "C"], [frozenset("A"), frozenset("B"), frozenset("C")])
        graph = ConflictGraph.from_instruction_set(iset)
        text = conflict_report(graph, greedy_cover(graph))
        assert "conflict graph" in text
        assert "clique cover" in text
        assert "artificial resources: ABC" in text

    def test_gantt_truncation(self):
        c = compiled()
        text = gantt_chart(c.schedule, max_cycles=3)
        assert "more cycles" in text

    def test_gantt_full(self):
        c = compiled()
        text = gantt_chart(c.schedule)
        assert text.count("\n") == c.schedule.length

    def test_summary_mentions_everything(self):
        text = summary_report(compiled())
        assert "tiny_audio" in text
        assert "audio" in text
        assert "classes" in text
        assert "ABC" in text
        assert "cycles" in text

    @staticmethod
    def exploration_point(**kwargs):
        defaults = dict(
            allocation=Allocation(rf_size=8, ram_size=64, rom_size=32),
            schedule_lengths={"gain": 4}, n_opus=8, n_rfs=10,
            storage_words=160,
        )
        defaults.update(kwargs)
        return ExplorationPoint(**defaults)

    def test_exploration_report_shows_every_axis(self):
        point = self.exploration_point()
        text = exploration_report([point], budget=10)
        header, row = text.splitlines()
        for column in ("mult", "alu", "ram", "rf", "ramw", "romw",
                       "merge", "OPUs", "RFs", "worst", "fits", "pareto"):
            assert column in header
        assert " 8 " in row and " 64 " in row and " 32 " in row
        assert " yes" in row and row.rstrip().endswith("*")

    def test_exploration_report_names_merge_variants(self):
        merged = self.exploration_point(
            allocation=Allocation(merge_variant="alu-operands"),
            schedule_lengths={"gain": 6}, n_rfs=9)
        text = exploration_report([self.exploration_point(), merged])
        assert "alu-operands" in text
        # The unmerged candidate renders a placeholder, not "none".
        assert "none" not in text

    def test_exploration_report_honors_pareto_axes(self):
        """Without an explicit front, the axes= parameter drives the
        '*' markers — a storage-only difference is invisible on the
        classic pair but decisive on the storage axes."""
        from repro.arch import STORAGE_AXES

        small = self.exploration_point(storage_words=160)
        big = self.exploration_point(
            allocation=Allocation(rf_size=16), storage_words=240)
        classic = exploration_report([small, big])
        storage = exploration_report([small, big], axes=STORAGE_AXES)
        assert classic.count("*") == 2
        assert storage.count("*") == 1

    def test_exploration_report_keeps_failures_visible(self):
        infeasible = self.exploration_point(
            schedule_lengths={}, failures={"gain": "RoutingError: no path"})
        text = exploration_report([self.exploration_point(), infeasible])
        assert "infeasible" in text
        assert "RoutingError" in text
