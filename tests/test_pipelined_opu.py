"""End-to-end tests with a pipelined (latency-2) multiplier.

The paper's RT model covers OPUs that are "possibly pipelined"; this
variant of the FIR core has a 2-cycle multiplier with initiation
interval 1.  Exercises the whole multi-cycle machinery: usage offsets,
dependence delays, destination fields landing one word later, and the
simulator's in-flight result queue.
"""


from repro import Q15, Toolchain, run_reference
from repro.arch import ControllerSpec, CoreSpec, Datapath, Operation, OpuKind
from repro.lang import parse_source
from repro.rtgen import generate_rts
from repro.sched import build_dependence_graph, list_schedule


def pipelined_core(mult_latency=2) -> CoreSpec:
    dp = Datapath("pipelined")
    ram = dp.add_opu("ram", OpuKind.RAM, [
        Operation("read", arity=1, reads_memory=True),
        Operation("write", arity=2, writes_memory=True),
    ], memory_size=64)
    mult = dp.add_opu("mult", OpuKind.MULT, [
        Operation("mult", arity=2, commutative=True,
                  latency=mult_latency, initiation_interval=1),
    ])
    alu = dp.add_opu("alu", OpuKind.ALU, [
        Operation("add", arity=2, commutative=True),
        Operation("add_clip", arity=2, commutative=True),
        Operation("pass", arity=1),
        Operation("pass_clip", arity=1),
    ])
    acu = dp.add_opu("acu", OpuKind.ACU, [Operation("addmod", arity=2)])
    prg = dp.add_opu("prg_c", OpuKind.CONST, [Operation("const", arity=1)])
    ipb = dp.add_opu("ipb", OpuKind.INPUT, [Operation("read", arity=0)])
    dp.add_opu("opb", OpuKind.OUTPUT, [Operation("write", arity=1)])

    rf = {}
    for name, size in [("rf_ram_addr", 4), ("rf_ram_data", 8),
                       ("rf_mult_data", 8), ("rf_mult_coef", 8),
                       ("rf_alu_p0", 8), ("rf_alu_p1", 8),
                       ("rf_acu", 2), ("rf_opb", 2)]:
        rf[name] = dp.add_register_file(name, size)

    dp.connect_port(ram, 0, rf["rf_ram_addr"])
    dp.connect_port(ram, 1, rf["rf_ram_data"])
    dp.connect_port(mult, 0, rf["rf_mult_data"])
    dp.connect_port(mult, 1, rf["rf_mult_coef"])
    dp.connect_port(alu, 0, rf["rf_alu_p0"])
    dp.connect_port(alu, 1, rf["rf_alu_p1"])
    dp.connect_port(acu, 0, rf["rf_acu"])
    dp.make_immediate_port(acu, 1)
    dp.make_immediate_port(prg, 0)
    dp.connect_port("opb", 0, rf["rf_opb"])

    buses = {o: dp.attach_bus(o) for o in (ram, mult, alu, acu, prg, ipb)}
    dp.route_bus(buses[acu], rf["rf_ram_addr"])
    dp.route_bus(buses[acu], rf["rf_acu"])
    dp.route_bus(buses[ipb], rf["rf_ram_data"])
    dp.route_bus(buses[alu], rf["rf_ram_data"])
    dp.route_bus(buses[mult], rf["rf_ram_data"])
    dp.route_bus(buses[ram], rf["rf_mult_data"])
    dp.route_bus(buses[alu], rf["rf_mult_data"])
    dp.route_bus(buses[ipb], rf["rf_mult_data"])
    dp.route_bus(buses[prg], rf["rf_mult_coef"])
    dp.route_bus(buses[mult], rf["rf_alu_p0"])
    dp.route_bus(buses[ram], rf["rf_alu_p0"])
    dp.route_bus(buses[ipb], rf["rf_alu_p0"])
    dp.route_bus(buses[alu], rf["rf_alu_p0"])
    dp.route_bus(buses[alu], rf["rf_alu_p1"])
    dp.route_bus(buses[ram], rf["rf_alu_p1"])
    dp.route_bus(buses[alu], rf["rf_opb"])

    from repro.arch.library import ClassDef
    return CoreSpec(
        name="pipelined",
        datapath=dp,
        controller=ControllerSpec(stack_depth=2, program_size=128),
        class_defs=[
            ClassDef("A", "ipb", ("read",)),
            ClassDef("B", "opb", ("write",)),
            ClassDef("D", "acu", ("addmod",)),
            ClassDef("X", "ram", ("read", "write")),
            ClassDef("G", "mult", ("mult",)),
            ClassDef("Y", "alu", ("add", "add_clip", "pass", "pass_clip")),
            ClassDef("M", "prg_c", ("const",)),
        ],
        instruction_types=[
            frozenset({"A", "D", "X", "G", "Y", "M"}),
            frozenset({"B", "D", "X", "G", "Y", "M"}),
        ],
    )


FIR3 = """
app fir3;
param h0 = 0.25, h1 = 0.5, h2 = 0.25;
input x; output y;
state d(2);
loop {
  d = x;
  m0 := mlt(h0, x);
  a  := pass(m0);
  m1 := mlt(h1, d@1);
  a  := add(m1, a);
  m2 := mlt(h2, d@2);
  y = add_clip(m2, a);
}
"""


class TestPipelinedMultiplier:
    def test_rt_carries_offset_uses(self):
        program = generate_rts(parse_source(FIR3), pipelined_core())
        mult_rts = [rt for rt in program.rts if rt.opu == "mult"]
        assert mult_rts
        for rt in mult_rts:
            assert rt.latency == 2
            offsets = {u.offset for u in rt.uses}
            assert offsets == {0, 1}
            # Bus/destination usage lives at the result offset.
            bus_use = next(u for u in rt.uses if u.resource == "bus_mult")
            assert bus_use.offset == 1

    def test_dependence_delay_matches_latency(self):
        program = generate_rts(parse_source(FIR3), pipelined_core())
        graph = build_dependence_graph(program)
        for edge in graph.edges:
            if edge.src.opu == "mult" and edge.kind.value == "raw":
                assert edge.delay == 2

    def test_schedule_respects_latency(self):
        program = generate_rts(parse_source(FIR3), pipelined_core())
        graph = build_dependence_graph(program)
        schedule = list_schedule(graph)
        schedule.validate(graph)
        producers = program.producers()
        for rt, cycle in schedule.cycle_of.items():
            for value in rt.read_values:
                producer = producers.get(value)
                if producer is not None:
                    assert cycle >= schedule.cycle_of[producer] + producer.latency

    def test_end_to_end_bit_exact(self):
        compiled = Toolchain(pipelined_core(), cache=None) \
            .compile(parse_source(FIR3))
        xs = [Q15.from_float(v) for v in (0.5, -0.25, 0.125, 0.75, 0.0, -0.5)]
        expected = run_reference(compiled.dfg, {"x": xs})
        assert compiled.run({"x": xs}) == expected

    def test_longer_latency_still_works(self):
        compiled = Toolchain(pipelined_core(mult_latency=3), cache=None) \
            .compile(parse_source(FIR3))
        xs = [Q15.from_float(v) for v in (0.9, -0.9, 0.3, 0.1)]
        expected = run_reference(compiled.dfg, {"x": xs})
        assert compiled.run({"x": xs}) == expected

    def test_pipelining_allows_back_to_back_mults(self):
        compiled = Toolchain(pipelined_core(), cache=None) \
            .compile(parse_source(FIR3))
        cycles = sorted(
            cycle for rt, cycle in compiled.schedule.cycle_of.items()
            if rt.opu == "mult"
        )
        # Initiation interval 1: at least one pair of multiplies issues
        # in consecutive cycles despite the 2-cycle latency.
        assert any(b - a == 1 for a, b in zip(cycles, cycles[1:]))
