"""Unit tests for the machine-independent DFG optimizer (repro.opt).

One test class per pass, plus the pass manager / report machinery and
the cached consumer index the passes (and the RT generator) share.
Every structural check is paired with a bit-exact reference-interpreter
comparison: a pass that rewrites the graph must never change a single
output sample.
"""

import random

import pytest

from repro import Q15, FixedFormat, Toolchain, run_reference, tiny_core
from repro.arch import ControllerSpec, CoreSpec, Datapath, Operation, OpuKind
from repro.arch.library import ClassDef
from repro.arch.opu import standard_shift_operations
from repro.lang import DfgBuilder
from repro.lang.dfg import NodeKind
from repro.opt import (
    AlgebraicSimplifyPass,
    ConstantFoldingPass,
    CsePass,
    DcePass,
    OptimizationError,
    OptReport,
    PassContext,
    StrengthReductionPass,
    optimize,
    passes_for_level,
)
from repro.report import optimization_report

from stream_helpers import random_streams

Q8_8 = FixedFormat(width=16, frac_bits=8)


def assert_same_streams(original, optimized, fmt=Q15, n=8, seed=0):
    stimulus = random_streams(original, n=n, seed=seed)
    assert (run_reference(original, stimulus, fmt=fmt)
            == run_reference(optimized, stimulus, fmt=fmt))


def op_names(dfg):
    return [n.name for n in dfg.nodes if n.kind is NodeKind.OP]


def shift_core() -> CoreSpec:
    """A multiplier-less core whose ALU has a step shifter (asr1..asr4):
    power-of-two multiplies compile only through strength reduction."""
    dp = Datapath("shifty")
    alu = dp.add_opu("alu", OpuKind.ALU, [
        Operation("add", arity=2, commutative=True),
        Operation("pass", arity=1),
    ] + standard_shift_operations(4))
    prg = dp.add_opu("prg_c", OpuKind.CONST, [Operation("const", arity=1)])
    ipb = dp.add_opu("ipb", OpuKind.INPUT, [Operation("read", arity=0)])
    dp.add_opu("opb", OpuKind.OUTPUT, [Operation("write", arity=1)])
    rf_p0 = dp.add_register_file("rf_alu_p0", 4)
    rf_p1 = dp.add_register_file("rf_alu_p1", 4)
    rf_opb = dp.add_register_file("rf_opb", 2)
    dp.connect_port(alu, 0, rf_p0)
    dp.connect_port(alu, 1, rf_p1)
    dp.make_immediate_port(prg, 0)
    dp.connect_port("opb", 0, rf_opb)
    bus_alu = dp.attach_bus(alu)
    bus_prg = dp.attach_bus(prg)
    bus_ipb = dp.attach_bus(ipb)
    dp.route_bus(bus_ipb, rf_p0)
    dp.route_bus(bus_alu, rf_p0)
    dp.route_bus(bus_prg, rf_p1)
    dp.route_bus(bus_alu, rf_p1)
    dp.route_bus(bus_alu, rf_opb)
    dp.route_bus(bus_ipb, rf_opb)
    usages = tuple(["add", "pass"] + [f"asr{k}" for k in range(1, 5)])
    return CoreSpec(
        name="shifty",
        datapath=dp,
        controller=ControllerSpec(stack_depth=2, n_flags=0,
                                  supports_conditionals=False,
                                  supports_loops=True, program_size=64),
        class_defs=[
            ClassDef("A", "ipb", ("read",)),
            ClassDef("B", "opb", ("write",)),
            ClassDef("Y", "alu", usages),
            ClassDef("M", "prg_c", ("const",)),
        ],
        instruction_types=[frozenset({"A", "Y", "M"}),
                           frozenset({"B", "Y", "M"})],
    )


class TestConstantFolding:
    def run_pass(self, dfg, fmt=Q15):
        return ConstantFoldingPass().run(dfg, PassContext(fmt=fmt))

    def test_folds_param_add(self):
        b = DfgBuilder("fold")
        s = b.op("add", b.param("p", 0.25), b.param("q", 0.5))
        b.output("y", b.op("add", s, b.input("x")))
        dfg = b.build()
        folded, stats = self.run_pass(dfg)
        assert stats.detail == {"folds": 1}
        # The folded constant quantizes exactly to 0.75.
        values = {Q15.from_float(v) for v in folded.params.values()}
        assert Q15.from_float(0.75) in values
        assert_same_streams(dfg, folded)

    def test_folds_whole_constant_subtree_in_one_sweep(self):
        b = DfgBuilder("tree")
        s = b.op("add", b.param("p", 0.1), b.param("q", 0.2))
        t = b.op("mult", s, b.param("r", 0.5))
        b.output("y", b.op("add", t, b.input("x")))
        folded, stats = self.run_pass(b.build())
        assert stats.detail == {"folds": 2}

    def test_clipping_op_saturates_at_the_rail(self):
        b = DfgBuilder("clip")
        s = b.op("add_clip", b.param("p", 0.9), b.param("q", 0.9))
        b.output("y", b.op("add", s, b.input("x")))
        dfg = b.build()
        folded, _ = self.run_pass(dfg)
        node = next(n for n in folded.nodes
                    if n.kind is NodeKind.PARAM
                    and Q15.from_float(folded.params[n.name]) == Q15.max_value)
        assert node is not None
        assert_same_streams(dfg, folded)

    def test_wrapping_op_wraps_like_hardware(self):
        # 0.9 + 0.9 through the plain adder wraps negative; folding on
        # floats would have produced +1.8 and a clipped constant.
        b = DfgBuilder("wrap")
        s = b.op("add", b.param("p", 0.9), b.param("q", 0.9))
        b.output("y", b.op("add", s, b.input("x")))
        dfg = b.build()
        folded, _ = self.run_pass(dfg)
        expected = Q15.add(Q15.from_float(0.9), Q15.from_float(0.9))
        assert expected < 0
        assert any(Q15.from_float(v) == expected
                   for v in folded.params.values())
        assert_same_streams(dfg, folded)

    def test_folded_constant_reuses_matching_coefficient(self):
        b = DfgBuilder("pool")
        s = b.op("add", b.param("p", 0.25), b.param("q", 0.25))
        b.output("y", b.op("mult", b.param("half", 0.5),
                           b.op("add", s, b.input("x"))))
        folded, _ = self.run_pass(b.build())
        # 0.25 + 0.25 == the existing 'half' coefficient: no new entry.
        assert set(folded.params) == {"p", "q", "half"}

    def test_unknown_asu_operation_left_alone(self):
        b = DfgBuilder("asu")
        s = b.op("warp9", b.param("p", 0.25), b.param("q", 0.5))
        b.output("y", b.op("add", s, b.input("x")))
        folded, stats = self.run_pass(b.build())
        assert not stats.changed
        assert "warp9" in op_names(folded)


class TestAlgebraicSimplify:
    def simplify(self, dfg, fmt=Q15):
        simplified, stats = AlgebraicSimplifyPass().run(
            dfg, PassContext(fmt=fmt))
        cleaned, _ = DcePass().run(simplified, PassContext(fmt=fmt))
        return cleaned, stats

    def test_add_zero_forwards_operand(self):
        b = DfgBuilder("addz")
        b.output("y", b.op("add", b.input("x"), b.param("z", 0.0)))
        dfg = b.build()
        cleaned, stats = self.simplify(dfg)
        assert stats.detail == {"add_zero": 1}
        assert op_names(cleaned) == []
        assert_same_streams(dfg, cleaned)

    def test_add_clip_zero_and_sub_zero(self):
        b = DfgBuilder("zeros")
        z = b.param("z", 0.0)
        x = b.input("x")
        b.output("a", b.op("add_clip", z, x))
        b.output("s", b.op("sub", x, z))
        dfg = b.build()
        cleaned, stats = self.simplify(dfg)
        assert op_names(cleaned) == []
        assert stats.detail == {"add_zero": 1, "sub_zero": 1}
        assert_same_streams(dfg, cleaned)

    def test_pass_chain_collapses(self):
        b = DfgBuilder("passes")
        x = b.input("x")
        b.output("y", b.op("pass_clip", b.op("pass", b.op("pass", x))))
        dfg = b.build()
        cleaned, stats = self.simplify(dfg)
        assert stats.detail == {"pass_collapsed": 3}
        assert op_names(cleaned) == []
        assert_same_streams(dfg, cleaned)

    def test_mult_by_exact_one_forwards(self):
        # 1.0 is representable in Q8.8 (scale 256), not in Q15.
        b = DfgBuilder("one")
        b.output("y", b.op("mult", b.param("one", 1.0), b.input("x")))
        dfg = b.build()
        cleaned, stats = self.simplify(dfg, fmt=Q8_8)
        assert stats.detail == {"mult_one": 1}
        assert op_names(cleaned) == []
        assert_same_streams(dfg, cleaned, fmt=Q8_8)

    def test_mult_by_one_does_not_fire_in_q15(self):
        # from_float(1.0) clips to 0.999969...: not the identity.
        b = DfgBuilder("notone")
        b.output("y", b.op("mult", b.param("one", 1.0), b.input("x")))
        cleaned, stats = self.simplify(b.build(), fmt=Q15)
        assert not stats.changed
        assert op_names(cleaned) == ["mult"]

    def test_mult_by_zero_becomes_constant(self):
        b = DfgBuilder("multz")
        m = b.op("mult", b.input("x"), b.param("z", 0.0))
        b.output("y", b.op("add", m, b.input("x2")))
        dfg = b.build()
        cleaned, stats = self.simplify(dfg)
        assert stats.detail == {"zeros": 1, "add_zero": 1}
        assert op_names(cleaned) == []
        assert_same_streams(dfg, cleaned)

    def test_sub_of_itself_becomes_zero(self):
        b = DfgBuilder("subself")
        x = b.input("x")
        b.output("y", b.op("add", b.op("sub", x, x), b.input("x2")))
        dfg = b.build()
        cleaned, stats = self.simplify(dfg)
        assert stats.detail == {"zeros": 1, "add_zero": 1}
        assert_same_streams(dfg, cleaned)


class TestCse:
    def run_cse(self, dfg):
        merged, stats = CsePass().run(dfg, PassContext())
        cleaned, _ = DcePass().run(merged, PassContext())
        return cleaned, stats

    def test_duplicate_delays_merge(self):
        b = DfgBuilder("delays")
        s = b.state("s", depth=2)
        b.write(s, b.input("x"))
        a = b.op("mult", b.param("p", 0.5), b.delay(s, 2))
        c = b.op("mult", b.param("q", 0.25), b.delay(s, 2))
        b.output("y", b.op("add", a, c))
        dfg = b.build()
        cleaned, stats = self.run_cse(dfg)
        assert stats.detail == {"delay_merged": 1}
        delays = [n for n in cleaned.nodes if n.kind is NodeKind.DELAY]
        assert len(delays) == 1
        assert_same_streams(dfg, cleaned)

    def test_different_delay_distances_kept(self):
        b = DfgBuilder("distances")
        s = b.state("s", depth=2)
        b.write(s, b.input("x"))
        b.output("y", b.op("add", b.delay(s, 1), b.delay(s, 2)))
        cleaned, stats = self.run_cse(b.build())
        assert not stats.changed

    def test_common_op_merges(self):
        b = DfgBuilder("ops")
        x, p = b.input("x"), b.param("p", 0.5)
        a = b.op("mult", p, x)
        c = b.op("mult", p, x)
        b.output("y", b.op("add", a, c))
        dfg = b.build()
        cleaned, stats = self.run_cse(dfg)
        assert stats.detail == {"op_merged": 1}
        assert op_names(cleaned).count("mult") == 1
        assert_same_streams(dfg, cleaned)

    def test_commutative_operands_merge_order_insensitively(self):
        b = DfgBuilder("comm")
        x, p = b.input("x"), b.param("p", 0.5)
        b.output("y", b.op("add", b.op("mult", p, x), b.op("mult", x, p)))
        cleaned, stats = self.run_cse(b.build())
        assert stats.detail == {"op_merged": 1}

    def test_noncommutative_operands_not_swapped(self):
        b = DfgBuilder("sub")
        x, x2 = b.input("x"), b.input("x2")
        b.output("y", b.op("add", b.op("sub", x, x2), b.op("sub", x2, x)))
        cleaned, stats = self.run_cse(b.build())
        assert not stats.changed

    def test_params_merge_by_quantized_value(self):
        b = DfgBuilder("pool")
        a = b.op("mult", b.param("p", 0.5), b.input("x"))
        c = b.op("mult", b.param("q", 0.5), b.input("x2"))
        b.output("y", b.op("add", a, c))
        dfg = b.build()
        cleaned, stats = self.run_cse(dfg)
        assert stats.detail == {"param_merged": 1}
        assert len(cleaned.params) == 1
        assert_same_streams(dfg, cleaned)

    def test_input_reads_never_merge(self):
        b = DfgBuilder("io")
        b.output("y", b.op("add", b.input("x"), b.input("x2")))
        cleaned, stats = self.run_cse(b.build())
        assert not stats.changed
        assert len([n for n in cleaned.nodes
                    if n.kind is NodeKind.INPUT]) == 2


class TestDce:
    def run_dce(self, dfg):
        return DcePass().run(dfg, PassContext())

    def test_dead_op_chain_removed(self):
        b = DfgBuilder("dead")
        x = b.input("x")
        b.op("mult", b.param("p", 0.5), x)          # never consumed
        b.output("y", b.op("pass", x))
        dfg = b.build()
        cleaned, stats = self.run_dce(dfg)
        assert stats.removed == 2
        assert op_names(cleaned) == ["pass"]
        assert "p" not in cleaned.params
        assert_same_streams(dfg, cleaned)

    def test_unread_state_write_removed(self):
        b = DfgBuilder("unread")
        s = b.state("s", depth=1)
        x = b.input("x")
        b.write(s, b.op("mult", b.param("p", 0.5), x))
        b.output("y", b.op("pass", x))
        dfg = b.build()
        cleaned, stats = self.run_dce(dfg)
        assert stats.removed == 3
        assert "s" not in cleaned.states
        assert_same_streams(dfg, cleaned)

    def test_dead_feedback_cycle_removed(self):
        # A state feeding only its own next value is unobservable.
        b = DfgBuilder("cycle")
        s = b.state("s", depth=1)
        b.write(s, b.op("mult", b.param("p", 0.5), b.delay(s, 1)))
        b.output("y", b.op("pass", b.input("x")))
        dfg = b.build()
        cleaned, stats = self.run_dce(dfg)
        assert stats.removed == 4
        assert "s" not in cleaned.states

    def test_live_state_kept_through_delay(self):
        b = DfgBuilder("live")
        s = b.state("s", depth=1)
        b.write(s, b.input("x"))
        b.output("y", b.delay(s, 1))
        cleaned, stats = self.run_dce(b.build())
        assert not stats.changed
        assert "s" in cleaned.states

    def test_port_declarations_survive_dead_input(self):
        # A dead INPUT node disappears but the port stays declared:
        # the run() interface must not change shape.
        b = DfgBuilder("ports")
        b.input("unused")
        b.output("y", b.op("pass", b.input("x")))
        cleaned, _ = self.run_dce(b.build())
        assert cleaned.inputs == ["unused", "x"]
        assert all(n.name != "unused" for n in cleaned.nodes)

    def test_renumbered_ids_stay_dense_and_topological(self):
        b = DfgBuilder("dense")
        x = b.input("x")
        b.op("mult", b.param("p", 0.5), x)
        b.output("y", b.op("pass", x))
        cleaned, _ = self.run_dce(b.build())
        assert [n.id for n in cleaned.nodes] == list(range(len(cleaned.nodes)))
        cleaned.validate()


class TestStrengthReduction:
    def reduce(self, dfg, core):
        return StrengthReductionPass().run(
            dfg, PassContext(fmt=Q15, core=core))

    def build_mult(self, value, name="c"):
        b = DfgBuilder("sr")
        b.output("y", b.op("mult", b.param(name, value), b.input("x")))
        return b.build()

    def test_half_becomes_asr1(self):
        reduced, stats = self.reduce(self.build_mult(0.5), shift_core())
        assert stats.detail["mults_reduced"] == 1
        assert stats.detail["coefficients_freed"] == 1
        assert op_names(reduced) == ["asr1"]

    def test_sixteenth_becomes_asr4(self):
        reduced, _ = self.reduce(self.build_mult(0.0625), shift_core())
        assert op_names(reduced) == ["asr4"]

    def test_distance_beyond_the_shifter_not_reduced(self):
        # 2**-5 would need asr5; the core stops at asr4.
        reduced, stats = self.reduce(self.build_mult(0.03125), shift_core())
        assert not stats.changed

    def test_non_power_of_two_untouched(self):
        reduced, stats = self.reduce(self.build_mult(0.75), shift_core())
        assert not stats.changed
        assert op_names(reduced) == ["mult"]

    def test_negative_power_untouched(self):
        reduced, stats = self.reduce(self.build_mult(-0.5), shift_core())
        assert not stats.changed

    def test_core_without_shifter_is_inert(self):
        reduced, stats = self.reduce(self.build_mult(0.5), tiny_core())
        assert not stats.changed

    def test_shared_coefficient_not_counted_freed(self):
        b = DfgBuilder("shared")
        h = b.param("half", 0.5)
        m = b.op("mult", h, b.input("x"))
        b.output("y", b.op("add", m, h))
        reduced, stats = self.reduce(b.build(), shift_core())
        assert stats.detail["mults_reduced"] == 1
        assert "coefficients_freed" not in stats.detail

    def test_asr_semantics_match_the_multiply(self):
        rng = random.Random(4)
        half = Q15.from_float(0.5)
        for _ in range(200):
            a = rng.randint(Q15.min_value, Q15.max_value)
            assert Q15.asr(a, 1) == Q15.mult(a, half)
            assert Q15.apply("asr3", a) == Q15.wrap(a >> 3)

    def test_asr_dispatch_rejects_wrong_arity(self):
        with pytest.raises(ValueError, match="no fixed-point semantics"):
            Q15.apply("asr2", 1, 2)
        with pytest.raises(ValueError, match="no fixed-point semantics"):
            Q15.apply("asr2")

    def test_compiles_on_multiplier_less_core(self):
        # End to end: the shift core has no MULT OPU at all, so the
        # power-of-two multiply only compiles through the reduction.
        dfg = self.build_mult(0.25)
        compiled = Toolchain(shift_core(), cache=None, opt=2).compile(dfg)
        assert all(rt.operation != "mult" for rt in compiled.rt_program.rts)
        stimulus = random_streams(dfg, n=6, seed=2)
        assert compiled.run(stimulus) == run_reference(dfg, stimulus)


class TestPassManagerAndReport:
    def test_level_zero_is_identity(self):
        b = DfgBuilder("id")
        b.output("y", b.op("pass", b.input("x")))
        dfg = b.build()
        optimized, report = optimize(dfg, level=0)
        assert optimized is dfg
        assert report.level == 0
        assert report.iterations == 0
        assert not report.changed

    def test_unknown_level_rejected(self):
        with pytest.raises(OptimizationError, match="unknown optimization"):
            passes_for_level(3)

    def test_o2_iterates_to_fixpoint(self):
        b = DfgBuilder("fix")
        s = b.op("add", b.param("p", 0.25), b.param("q", 0.5))
        b.output("y", b.op("add", s, b.input("x")))
        _, report = optimize(b.build(), level=2)
        # Sweep 1 rewrites, sweep 2 proves quiescence.
        assert report.iterations == 2

    def test_report_totals_and_summary(self):
        b = DfgBuilder("tot")
        x = b.input("x")
        b.output("y", b.op("pass", b.op("pass", x)))
        _, report = optimize(b.build(), level=1)
        totals = report.totals()
        assert totals["algebraic"] == 2
        assert totals["dce"] == 2
        assert "algebraic 2" in report.summary()
        assert report.nodes_removed == 2

    def test_optimization_report_renders(self):
        b = DfgBuilder("text")
        b.output("y", b.op("pass", b.input("x")))
        _, report = optimize(b.build(), level=2)
        text = optimization_report(report)
        assert "optimizer report (-O2" in text
        assert "algebraic" in text
        empty = optimization_report(OptReport(level=1, iterations=1))
        assert "(no rewrites)" in empty

    def test_compiled_program_carries_report_and_source(self):
        b = DfgBuilder("carry")
        b.output("y", b.op("pass", b.input("x")))
        dfg = b.build()
        compiled = Toolchain(tiny_core(), cache=None, opt=2).compile(dfg)
        assert compiled.source_dfg is dfg
        assert compiled.opt_report.level == 2
        assert compiled.opt_report.changed
        assert len(compiled.dfg.nodes) < len(dfg.nodes)


class TestConsumerIndex:
    def build(self):
        b = DfgBuilder("index")
        x = b.input("x")
        p = b.param("p", 0.5)
        m = b.op("mult", p, x)
        b.output("y", b.op("add", m, m))
        return b.build()

    def test_matches_brute_force(self):
        dfg = self.build()
        index = dfg.consumer_index()
        for node in dfg.nodes:
            brute = [n for n in dfg.nodes if node.id in n.args]
            assert list(index[node.id]) == brute
            assert dfg.consumers(node.id) == brute

    def test_duplicate_operand_listed_once(self):
        dfg = self.build()
        mult = next(n for n in dfg.nodes if n.name == "mult")
        readers = dfg.consumer_index()[mult.id]
        assert len(readers) == 1
        assert readers[0].name == "add"

    def test_cache_is_reused(self):
        dfg = self.build()
        assert dfg.consumer_index() is dfg.consumer_index()

    def test_append_rebuilds_automatically(self):
        from repro.lang.dfg import Node

        dfg = self.build()
        first = dfg.consumer_index()
        dfg.outputs.append("y2")
        dfg.nodes.append(Node(id=len(dfg.nodes), kind=NodeKind.OUTPUT,
                              name="y2", args=(0,)))
        second = dfg.consumer_index()
        assert second is not first
        assert any(n.name == "y2" for n in second[0])

    def test_explicit_invalidation(self):
        dfg = self.build()
        first = dfg.consumer_index()
        dfg.invalidate_consumers()
        assert dfg.consumer_index() is not first
