"""Differential testing of the optimizer: semantic preservation.

Every example application compiles at ``-O0`` and at ``-O2``; both
binaries run on the cycle-accurate simulator over randomized input
streams and must produce identical outputs — which must also equal the
golden reference interpreter executing the *unoptimized* source graph.
On top of bit-exactness, ``-O2`` must never schedule longer than
``-O0`` (the optimizer's whole contract is fewer transfers to pack).

The hypothesis suite in ``test_differential.py`` complements this with
randomly generated graphs at the default ``-O1``.
"""

from __future__ import annotations

import pytest

from repro import Toolchain, audio_core, fir_core, run_reference
from repro.apps import (
    adaptive_core,
    audio_application,
    audio_io_binding,
    biquad_cascade_application,
    channel_frontend_application,
    fir_application,
    lms_application,
    stress_application,
)

from stream_helpers import random_streams

N_FRAMES = 12


def _app_catalog():
    return {
        "audio": (
            audio_application(), audio_core(),
            dict(budget=64, io_binding=audio_io_binding()),
        ),
        "stress4": (stress_application(4), audio_core(), {}),
        "stress8": (
            stress_application(8, seed=1),
            audio_core(ram_size=256, rom_size=128, rf_scale=4,
                       program_size=512),
            {},
        ),
        "fir5": (
            fir_application([0.25, 0.5, 0.125, -0.0625, 0.3]), fir_core(), {},
        ),
        "biquad": (
            biquad_cascade_application(
                [(0.4, 0.1, -0.05, 0.2, -0.1), (0.3, 0.05, 0.0, 0.1, 0.0)]
            ),
            audio_core(), dict(budget=64),
        ),
        "channel": (channel_frontend_application(), fir_core(), {}),
        "lms": (lms_application(n_taps=2), adaptive_core(), {}),
    }


APP_NAMES = sorted(_app_catalog())


def compile_at(dfg, core, opt, kwargs):
    """Cold-compile one catalog entry at an optimization level."""
    options = dict(kwargs)
    io_binding = options.pop("io_binding", None)
    return Toolchain(core, cache=None, opt=opt, **options).compile(
        dfg, io_binding=io_binding)


def stimulus_for(dfg, seed):
    return random_streams(dfg, n=N_FRAMES, seed=seed)


@pytest.mark.parametrize("name", APP_NAMES)
@pytest.mark.parametrize("seed", [0, 1])
def test_o2_matches_o0_and_reference(name, seed):
    dfg, core, kwargs = _app_catalog()[name]
    baseline = compile_at(dfg, core, 0, kwargs)
    optimized = compile_at(dfg, core, 2, kwargs)

    stimulus = stimulus_for(dfg, seed=seed)
    expected = run_reference(dfg, stimulus)
    assert baseline.run(stimulus) == expected
    assert optimized.run(stimulus) == expected

    # The optimized reference also agrees: the rewritten graph is a
    # faithful model of its own binary.
    assert run_reference(optimized.dfg, stimulus) == expected

    assert optimized.n_cycles <= baseline.n_cycles


@pytest.mark.parametrize("name", APP_NAMES)
def test_o1_matches_reference(name):
    dfg, core, kwargs = _app_catalog()[name]
    compiled = compile_at(dfg, core, 1, kwargs)
    stimulus = stimulus_for(dfg, seed=7)
    assert compiled.run(stimulus) == run_reference(dfg, stimulus)
